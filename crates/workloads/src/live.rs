//! Live multi-node execution of the four paper benchmarks (§9.1) on the
//! FLU/DLU cluster runtime — real threads, real bytes, real pipes.
//!
//! Where [`Scenario::open_loop`](crate::Scenario::open_loop) *simulates*
//! a benchmark's timing, [`WorkloadSpec`](crate::WorkloadSpec) *executes* it: every
//! function body does actual byte-level work (splitting, counting,
//! transcoding, factorizing), payloads really cross the inter-node
//! fabric, and the run is validated against a straight-line reference
//! computation — any payload lost, duplicated or reordered by the
//! runtime makes the runner panic.
//!
//! The same workflow definitions drive both paths, so the simulated
//! figures and the live runs stay structurally identical. The pure
//! computations (inputs, reference outputs, byte transforms) live in
//! the crate-internal `common` module, shared with every other live
//! scenario.

use std::sync::Arc;
use std::time::Duration;

use dataflower_rt::Placement;
use dataflower_rt::{
    ByLevel, Bytes, ClusterRtConfig, ClusterRuntime, ClusterRuntimeBuilder, PlacementPolicy,
    RoundRobin, RtStats, SingleNode,
};
use dataflower_workflow::Workflow;

use crate::benchmarks::Benchmark;
use crate::common::{
    blur, branch_ordered, count_table, digest_expand, downsample, even_spans, factorize, render,
    render_counts, run_verified, transcode, SVD_BLOCKS, VID_BRANCHES, WC_FAN_OUT,
};

/// How the live runner places benchmark functions on nodes. Each variant
/// stands for one of the stock [`PlacementPolicy`] implementations,
/// selected with [`WorkloadSpec::placement`](crate::WorkloadSpec::placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivePlacement {
    /// Everything co-located on node 0 (the paper's single-worker
    /// baseline; only direct sockets and local pipes fire) — the
    /// [`SingleNode`] policy.
    SingleNode,
    /// Functions scattered one by one in topological order — almost
    /// every data edge crosses nodes; the [`RoundRobin`] policy.
    RoundRobin,
    /// One dependency level per node — stages stay co-located, level
    /// boundaries cross nodes (the spread used in the committed bench
    /// baseline); the [`ByLevel`] policy.
    ByLevel,
}

impl LivePlacement {
    /// The stock placement policy this variant stands for.
    pub fn policy(self) -> &'static dyn PlacementPolicy {
        match self {
            LivePlacement::SingleNode => &SingleNode,
            LivePlacement::RoundRobin => &RoundRobin,
            LivePlacement::ByLevel => &ByLevel,
        }
    }
}

/// Parameters of a plain closed-loop live run (the
/// [`WorkloadSpec`](crate::WorkloadSpec) default).
#[derive(Debug, Clone)]
pub struct LiveClusterConfig {
    /// Worker nodes in the topology.
    pub nodes: usize,
    /// Placement strategy over those nodes.
    pub placement: LivePlacement,
    /// Concurrent requests to drive through the workflow.
    pub requests: usize,
    /// Client input payload size in bytes.
    pub payload_bytes: usize,
    /// Runtime tuning (pipe thresholds, chunking, link shaping).
    pub rt: ClusterRtConfig,
    /// Per-request completion deadline.
    pub timeout: Duration,
}

impl Default for LiveClusterConfig {
    /// 3 nodes, by-level spread, one request of 256 KiB, default runtime
    /// knobs, 60 s deadline.
    fn default() -> Self {
        LiveClusterConfig {
            nodes: 3,
            placement: LivePlacement::ByLevel,
            requests: 1,
            payload_bytes: 256 * 1024,
            rt: ClusterRtConfig::default(),
            timeout: Duration::from_secs(60),
        }
    }
}

/// Outcome of one live benchmark run: wall-clock time plus the runtime's
/// pipe/transfer counters. Produced by the live runners.
#[derive(Debug, Clone)]
pub struct LiveClusterReport {
    /// Short benchmark name (`wc`, `vid`, `svd`, `img`).
    pub benchmark: &'static str,
    /// Worker nodes in the topology.
    pub nodes: usize,
    /// Requests completed (all of them — a failed request panics).
    pub requests: usize,
    /// Wall-clock time from first invoke to last result.
    pub elapsed: Duration,
    /// Total client-output bytes received.
    pub output_bytes: usize,
    /// Aggregated runtime counters (pipe kinds, chunks, checkpoints...).
    pub stats: RtStats,
}

/// Untraced [`run_live_cluster_traced`] (test convenience).
#[cfg(test)]
pub(crate) fn run_live_cluster(
    bench: Benchmark,
    cfg: &LiveClusterConfig,
    policy: &dyn PlacementPolicy,
) -> LiveClusterReport {
    run_live_cluster_traced(bench, cfg, policy, None)
}

/// The plain closed-loop live runner — the body behind
/// [`WorkloadSpec`](crate::WorkloadSpec) (no faults, closed loop,
/// in-process). When `trace_path` is set, the runtime records a
/// [`dataflower_rt::trace`] event stream and writes it (in the on-disk
/// `DFTR` encoding) to that path after the run — the
/// [`WorkloadSpec::record_trace`](crate::WorkloadSpec::record_trace)
/// knob.
pub(crate) fn run_live_cluster_traced(
    bench: Benchmark,
    cfg: &LiveClusterConfig,
    policy: &dyn PlacementPolicy,
    trace_path: Option<&std::path::Path>,
) -> LiveClusterReport {
    let wf = bench.workflow();
    let placement = policy.initial(&wf, cfg.nodes);
    let rt = live_builder(bench, Arc::clone(&wf), placement, cfg.rt.clone())
        .record_trace(trace_path.is_some())
        .start()
        .expect("live benchmark bodies cover the DAG");
    let run = run_verified(
        "live",
        bench,
        cfg.requests,
        cfg.payload_bytes,
        cfg.timeout,
        |name, payload| rt.invoke(vec![(name, payload)]),
        || {},
        |req, timeout| rt.wait(req, timeout),
    );
    let stats = rt.stats();
    let nodes = rt.node_count(); // actual topology: SingleNode forces 1

    // Teardown first, trace second: events for transfers off a
    // request's critical path can be recorded after the last `wait`
    // returns, so only a post-shutdown read is guaranteed complete.
    let trace = rt.shutdown_into_trace();
    if let (Some(path), Some(bytes)) = (trace_path, trace) {
        if let Err(e) = std::fs::write(path, bytes) {
            eprintln!("warning: could not write trace to {}: {e}", path.display());
        }
    }
    LiveClusterReport {
        benchmark: bench.name(),
        nodes,
        requests: run.requests,
        elapsed: run.elapsed,
        output_bytes: run.output_bytes,
        stats,
    }
}

/// Builds (but does not start) the live cluster builder for `bench`
/// with every function body registered — shared by the in-process
/// runtime and the worker-process TCP mode, which must rebuild the
/// identical topology in every OS process.
pub(crate) fn live_builder(
    bench: Benchmark,
    wf: Arc<Workflow>,
    placement: Placement,
    rt_cfg: ClusterRtConfig,
) -> ClusterRuntimeBuilder {
    let builder = ClusterRuntimeBuilder::new(wf)
        .placement(placement)
        .config(rt_cfg);
    match bench {
        Benchmark::Wc => register_wc(builder),
        Benchmark::Vid => register_vid(builder),
        Benchmark::Svd => register_svd(builder),
        Benchmark::Img => register_img(builder),
    }
}

/// Builds the live runtime for `bench` with every function body
/// registered.
pub(crate) fn live_runtime(
    bench: Benchmark,
    wf: Arc<Workflow>,
    placement: Placement,
    rt_cfg: ClusterRtConfig,
) -> ClusterRuntime {
    live_builder(bench, wf, placement, rt_cfg)
        .start()
        .expect("live benchmark bodies cover the DAG")
}

// --- WordCount -------------------------------------------------------

fn register_wc(b: ClusterRuntimeBuilder) -> ClusterRuntimeBuilder {
    let mut b = b.register("wc_start", |ctx| {
        let text = ctx.input("text").expect("client text").clone();
        // Cut the payload at whitespace boundaries so no word straddles
        // two shards; each shard is a zero-copy view of the input.
        let bytes = &text[..];
        let mut cuts = [0usize; WC_FAN_OUT + 1];
        cuts[WC_FAN_OUT] = bytes.len();
        for i in 1..WC_FAN_OUT {
            let mut p = i * bytes.len() / WC_FAN_OUT;
            while p < bytes.len() && !bytes[p].is_ascii_whitespace() {
                p += 1;
            }
            cuts[i] = p.max(cuts[i - 1]).min(bytes.len());
        }
        for i in 0..WC_FAN_OUT {
            ctx.put_to(
                "file",
                format!("wc_count_{i}"),
                text.slice(cuts[i]..cuts[i + 1]),
            );
        }
    });
    for i in 0..WC_FAN_OUT {
        b = b.register(format!("wc_count_{i}"), |ctx| {
            let shard = ctx.input("file").expect("shard");
            ctx.put("count", Bytes::from(count_table(shard)));
        });
    }
    b.register("wc_merge", |ctx| {
        let out = {
            let mut total: std::collections::BTreeMap<&[u8], u64> =
                std::collections::BTreeMap::new();
            let payloads = ctx.inputs_named("count");
            for payload in &payloads {
                for line in payload.split(|b| *b == b'\n').filter(|l| !l.is_empty()) {
                    let tab = line.iter().position(|b| *b == b'\t').expect("word\\tcount");
                    let count = std::str::from_utf8(&line[tab + 1..])
                        .ok()
                        .and_then(|s| s.parse::<u64>().ok())
                        .expect("count");
                    *total.entry(&line[..tab]).or_default() += count;
                }
            }
            render_counts(&total)
        };
        ctx.put("output", Bytes::from(out));
    })
}

// --- Video-FFmpeg ----------------------------------------------------

fn register_vid(b: ClusterRuntimeBuilder) -> ClusterRuntimeBuilder {
    let mut b = b.register("vid_split", |ctx| {
        let video = ctx.input("video").expect("client video").clone();
        for (i, (lo, hi)) in even_spans(video.len(), VID_BRANCHES)
            .into_iter()
            .enumerate()
        {
            ctx.put_to(
                "chunk",
                format!("vid_transcode_{i}"),
                Bytes::copy_from_slice(&video[lo..hi]),
            );
        }
    });
    for i in 0..VID_BRANCHES {
        b = b.register(format!("vid_transcode_{i}"), |ctx| {
            let chunk = ctx.input("chunk").expect("chunk");
            ctx.put("encoded", Bytes::from(transcode(chunk)));
        });
    }
    b.register("vid_merge", |ctx| {
        let merged: Vec<u8> = branch_ordered(ctx, "encoded")
            .into_iter()
            .flat_map(|b| b.iter().copied())
            .collect();
        ctx.put("video_out", Bytes::from(merged));
    })
}

// --- SVD -------------------------------------------------------------

fn register_svd(b: ClusterRuntimeBuilder) -> ClusterRuntimeBuilder {
    let mut b = b.register("svd_partition", |ctx| {
        let matrix = ctx.input("matrix").expect("client matrix").clone();
        for (i, (lo, hi)) in even_spans(matrix.len(), SVD_BLOCKS).into_iter().enumerate() {
            ctx.put_to(
                "tile",
                format!("svd_block_{i}"),
                Bytes::copy_from_slice(&matrix[lo..hi]),
            );
        }
    });
    for i in 0..SVD_BLOCKS {
        b = b.register(format!("svd_block_{i}"), |ctx| {
            let tile = ctx.input("tile").expect("tile");
            ctx.put("factors", Bytes::from(factorize(tile)));
        });
    }
    b.register("svd_compose", |ctx| {
        let composed: Vec<u8> = branch_ordered(ctx, "factors")
            .into_iter()
            .flat_map(|b| b.iter().copied())
            .collect();
        ctx.put("usv", Bytes::from(composed));
    })
}

// --- ML image pipeline ----------------------------------------------

fn register_img(b: ClusterRuntimeBuilder) -> ClusterRuntimeBuilder {
    b.register("img_extract", |ctx| {
        let image = ctx.input("image").expect("client image").clone();
        ctx.put("raw", image);
    })
    .register("img_resize", |ctx| {
        let raw = ctx.input("raw").expect("raw");
        let scaled = Bytes::from(downsample(raw));
        ctx.put("scaled", scaled.clone());
        ctx.put("scaled2", scaled);
    })
    .register("img_classify", |ctx| {
        let scaled = ctx.input("scaled").expect("scaled");
        ctx.put(
            "labels",
            Bytes::from(digest_expand(scaled, 24 * 1024, 0x9e3779b97f4a7c15)),
        );
    })
    .register("img_detect", |ctx| {
        let scaled = ctx.input("scaled2").expect("scaled2");
        ctx.put(
            "boxes",
            Bytes::from(digest_expand(scaled, 32 * 1024, 0xd1b54a32d192ed03)),
        );
    })
    .register("img_blur", |ctx| {
        let labels = ctx.input("labels").expect("labels");
        let boxes = ctx.input("boxes").expect("boxes");
        ctx.put("blurred", Bytes::from(blur(labels, boxes)));
    })
    .register("img_render", |ctx| {
        let blurred = ctx.input("blurred").expect("blurred");
        ctx.put("final", Bytes::from(render(blurred)));
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflower_rt::LoadAware;

    #[test]
    fn all_benchmarks_complete_on_three_spread_nodes() {
        for bench in Benchmark::ALL {
            let cfg = LiveClusterConfig {
                payload_bytes: 96 * 1024,
                ..LiveClusterConfig::default()
            };
            let report = run_live_cluster(bench, &cfg, cfg.placement.policy());
            assert_eq!(report.requests, 1);
            assert!(report.output_bytes > 0, "{bench}: empty output");
            assert!(
                report.stats.remote_bytes > 0,
                "{bench}: spread placement shipped nothing across nodes"
            );
        }
    }

    #[test]
    fn single_node_run_uses_no_remote_pipe() {
        let cfg = LiveClusterConfig {
            nodes: 1,
            placement: LivePlacement::SingleNode,
            payload_bytes: 64 * 1024,
            ..LiveClusterConfig::default()
        };
        let report = run_live_cluster(Benchmark::Vid, &cfg, cfg.placement.policy());
        assert_eq!(report.stats.remote_pipe_transfers, 0);
        assert_eq!(report.stats.remote_bytes, 0);
        assert!(report.stats.local_pipe_transfers > 0);
    }

    #[test]
    fn wc_spread_exercises_remote_and_direct_pipes() {
        let cfg = LiveClusterConfig {
            payload_bytes: 256 * 1024,
            requests: 2,
            ..LiveClusterConfig::default()
        };
        let report = run_live_cluster(Benchmark::Wc, &cfg, cfg.placement.policy());
        // 64 KiB shards stream remotely; the small count tables cross on
        // the direct socket.
        assert!(report.stats.remote_pipe_transfers > 0);
        assert!(report.stats.direct_socket_transfers > 0);
        assert!(report.stats.remote_chunks >= report.stats.remote_pipe_transfers);
    }

    #[test]
    fn custom_policy_drives_the_live_runner() {
        let cfg = LiveClusterConfig {
            payload_bytes: 64 * 1024,
            ..LiveClusterConfig::default()
        };
        let report = run_live_cluster(Benchmark::Svd, &cfg, &LoadAware::idle());
        assert_eq!(report.requests, 1);
        assert!(report.output_bytes > 0);
    }
}
