//! Live multi-node execution of the four paper benchmarks (§9.1) on the
//! FLU/DLU cluster runtime — real threads, real bytes, real pipes.
//!
//! Where [`Scenario::open_loop`](crate::Scenario::open_loop) *simulates*
//! a benchmark's timing, [`Scenario::live_cluster`] *executes* it: every
//! function body does actual byte-level work (splitting, counting,
//! transcoding, factorizing), payloads really cross the inter-node
//! fabric, and the run is validated against a straight-line reference
//! computation — any payload lost, duplicated or reordered by the
//! runtime makes the runner panic.
//!
//! The same workflow definitions drive both paths, so the simulated
//! figures and the live runs stay structurally identical.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dataflower_rt::{
    Bytes, ClusterRtConfig, ClusterRuntime, ClusterRuntimeBuilder, FluContext, Placement, RtStats,
};
use dataflower_workflow::Workflow;

use crate::benchmarks::Benchmark;
use crate::harness::Scenario;

/// Number of fan-out branches the default benchmark workflows use (see
/// [`Benchmark::workflow`]): wordcount splits into 4, video transcodes 4
/// chunks, SVD factorizes 8 tiles.
const WC_FAN_OUT: usize = 4;
const VID_BRANCHES: usize = 4;
const SVD_BLOCKS: usize = 8;

/// How the live runner places benchmark functions on nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivePlacement {
    /// Everything co-located on node 0 (the paper's single-worker
    /// baseline; only direct sockets and local pipes fire).
    SingleNode,
    /// Functions scattered one by one in topological order — almost
    /// every data edge crosses nodes.
    RoundRobin,
    /// One dependency level per node — stages stay co-located, level
    /// boundaries cross nodes (the spread used in the committed bench
    /// baseline).
    ByLevel,
}

/// Parameters of a [`Scenario::live_cluster`] run.
#[derive(Debug, Clone)]
pub struct LiveClusterConfig {
    /// Worker nodes in the topology.
    pub nodes: usize,
    /// Placement strategy over those nodes.
    pub placement: LivePlacement,
    /// Concurrent requests to drive through the workflow.
    pub requests: usize,
    /// Client input payload size in bytes.
    pub payload_bytes: usize,
    /// Runtime tuning (pipe thresholds, chunking, link shaping).
    pub rt: ClusterRtConfig,
    /// Per-request completion deadline.
    pub timeout: Duration,
}

impl Default for LiveClusterConfig {
    /// 3 nodes, by-level spread, one request of 256 KiB, default runtime
    /// knobs, 60 s deadline.
    fn default() -> Self {
        LiveClusterConfig {
            nodes: 3,
            placement: LivePlacement::ByLevel,
            requests: 1,
            payload_bytes: 256 * 1024,
            rt: ClusterRtConfig::default(),
            timeout: Duration::from_secs(60),
        }
    }
}

/// Outcome of one live benchmark run: wall-clock time plus the runtime's
/// pipe/transfer counters. Produced by [`Scenario::live_cluster`].
#[derive(Debug, Clone)]
pub struct LiveClusterReport {
    /// Short benchmark name (`wc`, `vid`, `svd`, `img`).
    pub benchmark: &'static str,
    /// Worker nodes in the topology.
    pub nodes: usize,
    /// Requests completed (all of them — a failed request panics).
    pub requests: usize,
    /// Wall-clock time from first invoke to last result.
    pub elapsed: Duration,
    /// Total client-output bytes received.
    pub output_bytes: usize,
    /// Aggregated runtime counters (pipe kinds, chunks, checkpoints...).
    pub stats: RtStats,
}

impl Scenario {
    /// Runs `bench` **live** on an N-node [`ClusterRuntime`]: real
    /// threads execute real function bodies, and every inter-function
    /// payload crosses the paper's three-way pipe choice under the
    /// configured placement. Results are validated byte-for-byte against
    /// a straight-line reference computation.
    ///
    /// # Panics
    ///
    /// Panics if a request misses its deadline or any output diverges
    /// from the reference — the live runtime dropping, duplicating or
    /// reordering data is a bug, not a data point.
    ///
    /// # Examples
    ///
    /// ```
    /// use dataflower_workloads::{Benchmark, LiveClusterConfig, Scenario};
    ///
    /// let cfg = LiveClusterConfig {
    ///     payload_bytes: 64 * 1024,
    ///     ..LiveClusterConfig::default()
    /// };
    /// let report = Scenario::live_cluster(Benchmark::Wc, &cfg);
    /// assert_eq!(report.nodes, 3);
    /// assert!(report.stats.remote_pipe_transfers > 0);
    /// ```
    pub fn live_cluster(bench: Benchmark, cfg: &LiveClusterConfig) -> LiveClusterReport {
        let wf = bench.workflow();
        let placement = match cfg.placement {
            LivePlacement::SingleNode => Placement::single_node(),
            LivePlacement::RoundRobin => Placement::round_robin(&wf, cfg.nodes),
            LivePlacement::ByLevel => Placement::by_level(&wf, cfg.nodes),
        };
        let rt = live_runtime(bench, Arc::clone(&wf), placement, cfg.rt.clone());
        let (input_name, input) = live_input(bench, cfg.payload_bytes);
        let expected = reference_output(bench, &input);

        let t0 = Instant::now();
        let input = Bytes::from(input);
        let reqs: Vec<_> = (0..cfg.requests.max(1))
            .map(|_| rt.invoke(vec![(input_name.to_owned(), input.clone())]))
            .collect();
        let mut output_bytes = 0;
        let requests = reqs.len();
        for req in reqs {
            let outputs = rt
                .wait(req, cfg.timeout)
                .unwrap_or_else(|e| panic!("live {bench} request failed: {e}"));
            assert_eq!(outputs.len(), 1, "live {bench}: expected one client output");
            assert_eq!(
                &*outputs[0].1,
                &expected[..],
                "live {bench} output diverged from the reference computation"
            );
            output_bytes += outputs[0].1.len();
        }
        let elapsed = t0.elapsed();
        let stats = rt.stats();
        let nodes = rt.node_count(); // actual topology: SingleNode forces 1
        rt.shutdown();
        LiveClusterReport {
            benchmark: bench.name(),
            nodes,
            requests,
            elapsed,
            output_bytes,
            stats,
        }
    }
}

/// Builds (but does not start) the live cluster builder for `bench`
/// with every function body registered — shared by the in-process
/// runtime and the worker-process TCP mode, which must rebuild the
/// identical topology in every OS process.
pub(crate) fn live_builder(
    bench: Benchmark,
    wf: Arc<Workflow>,
    placement: Placement,
    rt_cfg: ClusterRtConfig,
) -> ClusterRuntimeBuilder {
    let builder = ClusterRuntimeBuilder::new(wf)
        .placement(placement)
        .config(rt_cfg);
    match bench {
        Benchmark::Wc => register_wc(builder),
        Benchmark::Vid => register_vid(builder),
        Benchmark::Svd => register_svd(builder),
        Benchmark::Img => register_img(builder),
    }
}

/// Builds the live runtime for `bench` with every function body
/// registered.
pub(crate) fn live_runtime(
    bench: Benchmark,
    wf: Arc<Workflow>,
    placement: Placement,
    rt_cfg: ClusterRtConfig,
) -> ClusterRuntime {
    live_builder(bench, wf, placement, rt_cfg)
        .start()
        .expect("live benchmark bodies cover the DAG")
}

/// The client input `(data name, payload)` a live run of `bench` feeds
/// in: a deterministic pseudo-text corpus for wordcount, deterministic
/// pseudo-random bytes for the binary pipelines.
pub(crate) fn live_input(bench: Benchmark, payload_bytes: usize) -> (&'static str, Vec<u8>) {
    match bench {
        Benchmark::Wc => ("text", corpus(payload_bytes)),
        Benchmark::Vid => ("video", noise(payload_bytes, 0x1005_8f1d)),
        Benchmark::Svd => ("matrix", noise(payload_bytes, 0x2eb7_4a1b)),
        Benchmark::Img => ("image", noise(payload_bytes, 0x3c6e_f372)),
    }
}

/// The straight-line (single-threaded) computation each live benchmark
/// must reproduce byte-for-byte through the runtime.
pub(crate) fn reference_output(bench: Benchmark, input: &[u8]) -> Vec<u8> {
    match bench {
        Benchmark::Wc => {
            let text = String::from_utf8_lossy(input);
            count_table(text.split_whitespace())
        }
        Benchmark::Vid => even_spans(input.len(), VID_BRANCHES)
            .into_iter()
            .flat_map(|(lo, hi)| transcode(&input[lo..hi]))
            .collect(),
        Benchmark::Svd => even_spans(input.len(), SVD_BLOCKS)
            .into_iter()
            .flat_map(|(lo, hi)| factorize(&input[lo..hi]))
            .collect(),
        Benchmark::Img => {
            let raw = input.to_vec();
            let scaled = downsample(&raw);
            let labels = digest_expand(&scaled, 24 * 1024, 0x9e3779b97f4a7c15);
            let boxes = digest_expand(&scaled, 32 * 1024, 0xd1b54a32d192ed03);
            let blurred = blur(&labels, &boxes);
            render(&blurred)
        }
    }
}

// --- WordCount -------------------------------------------------------

fn register_wc(b: ClusterRuntimeBuilder) -> ClusterRuntimeBuilder {
    let mut b = b.register("wc_start", |ctx| {
        let text = String::from_utf8_lossy(ctx.input("text").expect("client text")).into_owned();
        let words: Vec<&str> = text.split_whitespace().collect();
        let shard = words.len().div_ceil(WC_FAN_OUT);
        for i in 0..WC_FAN_OUT {
            let lo = (i * shard).min(words.len());
            let hi = ((i + 1) * shard).min(words.len());
            ctx.put_to(
                "file",
                format!("wc_count_{i}"),
                Bytes::from(words[lo..hi].join(" ")),
            );
        }
    });
    for i in 0..WC_FAN_OUT {
        b = b.register(format!("wc_count_{i}"), |ctx| {
            let shard = String::from_utf8_lossy(ctx.input("file").expect("shard")).into_owned();
            ctx.put("count", Bytes::from(count_table(shard.split_whitespace())));
        });
    }
    b.register("wc_merge", |ctx| {
        let mut total: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for payload in ctx.inputs_named("count") {
            for line in String::from_utf8_lossy(payload).lines() {
                let (w, c) = line.split_once('\t').expect("word\\tcount");
                *total.entry(w.to_owned()).or_default() += c.parse::<u64>().expect("count");
            }
        }
        let out = total
            .iter()
            .map(|(w, c)| format!("{w}\t{c}"))
            .collect::<Vec<_>>()
            .join("\n");
        ctx.put("output", Bytes::from(out));
    })
}

/// Word-frequency table of `words`, ascending by word, `word\tcount`
/// lines — merging per-shard tables reproduces this exactly.
fn count_table<'a>(words: impl Iterator<Item = &'a str>) -> Vec<u8> {
    let mut counts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for w in words {
        *counts.entry(w).or_default() += 1;
    }
    counts
        .iter()
        .map(|(w, c)| format!("{w}\t{c}"))
        .collect::<Vec<_>>()
        .join("\n")
        .into_bytes()
}

// --- Video-FFmpeg ----------------------------------------------------

fn register_vid(b: ClusterRuntimeBuilder) -> ClusterRuntimeBuilder {
    let mut b = b.register("vid_split", |ctx| {
        let video = ctx.input("video").expect("client video").clone();
        for (i, (lo, hi)) in even_spans(video.len(), VID_BRANCHES)
            .into_iter()
            .enumerate()
        {
            ctx.put_to(
                "chunk",
                format!("vid_transcode_{i}"),
                Bytes::copy_from_slice(&video[lo..hi]),
            );
        }
    });
    for i in 0..VID_BRANCHES {
        b = b.register(format!("vid_transcode_{i}"), |ctx| {
            let chunk = ctx.input("chunk").expect("chunk");
            ctx.put("encoded", Bytes::from(transcode(chunk)));
        });
    }
    b.register("vid_merge", |ctx| {
        let merged: Vec<u8> = branch_ordered(ctx, "encoded")
            .into_iter()
            .flat_map(|b| b.iter().copied())
            .collect();
        ctx.put("video_out", Bytes::from(merged));
    })
}

/// Stand-in re-encode: an invertibility-free byte transform that shrinks
/// the stream to 85 % (the benchmark's calibrated encoded/chunk ratio).
fn transcode(chunk: &[u8]) -> Vec<u8> {
    let keep = chunk.len() * 85 / 100;
    chunk[..keep]
        .iter()
        .map(|b| b.wrapping_mul(31).wrapping_add(7))
        .collect()
}

// --- SVD -------------------------------------------------------------

fn register_svd(b: ClusterRuntimeBuilder) -> ClusterRuntimeBuilder {
    let mut b = b.register("svd_partition", |ctx| {
        let matrix = ctx.input("matrix").expect("client matrix").clone();
        for (i, (lo, hi)) in even_spans(matrix.len(), SVD_BLOCKS).into_iter().enumerate() {
            ctx.put_to(
                "tile",
                format!("svd_block_{i}"),
                Bytes::copy_from_slice(&matrix[lo..hi]),
            );
        }
    });
    for i in 0..SVD_BLOCKS {
        b = b.register(format!("svd_block_{i}"), |ctx| {
            let tile = ctx.input("tile").expect("tile");
            ctx.put("factors", Bytes::from(factorize(tile)));
        });
    }
    b.register("svd_compose", |ctx| {
        let composed: Vec<u8> = branch_ordered(ctx, "factors")
            .into_iter()
            .flat_map(|b| b.iter().copied())
            .collect();
        ctx.put("usv", Bytes::from(composed));
    })
}

/// Stand-in block factorization: a rolling-checksum mix shrinking the
/// tile to 60 % (the benchmark's calibrated factors/tile ratio).
fn factorize(tile: &[u8]) -> Vec<u8> {
    let keep = tile.len() * 60 / 100;
    let mut acc: u8 = 0x5a;
    tile[..keep]
        .iter()
        .map(|b| {
            acc = acc.wrapping_mul(13).wrapping_add(*b);
            *b ^ acc
        })
        .collect()
}

// --- ML image pipeline ----------------------------------------------

fn register_img(b: ClusterRuntimeBuilder) -> ClusterRuntimeBuilder {
    b.register("img_extract", |ctx| {
        let image = ctx.input("image").expect("client image").clone();
        ctx.put("raw", image);
    })
    .register("img_resize", |ctx| {
        let raw = ctx.input("raw").expect("raw");
        let scaled = Bytes::from(downsample(raw));
        ctx.put("scaled", scaled.clone());
        ctx.put("scaled2", scaled);
    })
    .register("img_classify", |ctx| {
        let scaled = ctx.input("scaled").expect("scaled");
        ctx.put(
            "labels",
            Bytes::from(digest_expand(scaled, 24 * 1024, 0x9e3779b97f4a7c15)),
        );
    })
    .register("img_detect", |ctx| {
        let scaled = ctx.input("scaled2").expect("scaled2");
        ctx.put(
            "boxes",
            Bytes::from(digest_expand(scaled, 32 * 1024, 0xd1b54a32d192ed03)),
        );
    })
    .register("img_blur", |ctx| {
        let labels = ctx.input("labels").expect("labels");
        let boxes = ctx.input("boxes").expect("boxes");
        ctx.put("blurred", Bytes::from(blur(labels, boxes)));
    })
    .register("img_render", |ctx| {
        let blurred = ctx.input("blurred").expect("blurred");
        ctx.put("final", Bytes::from(render(blurred)));
    })
}

/// Stand-in resize: keep every other byte.
fn downsample(raw: &[u8]) -> Vec<u8> {
    raw.iter().step_by(2).copied().collect()
}

/// Deterministic fixed-size "model output": an FNV-1a stream over the
/// input, expanded to `out_len` bytes from `seed`.
fn digest_expand(input: &[u8], out_len: usize, seed: u64) -> Vec<u8> {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for b in input {
        h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
    }
    let mut out = Vec::with_capacity(out_len);
    let mut s = h;
    while out.len() < out_len {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.extend_from_slice(&s.to_le_bytes());
    }
    out.truncate(out_len);
    out
}

/// Stand-in blur: mixes the label vector cyclically into the box tensor.
fn blur(labels: &[u8], boxes: &[u8]) -> Vec<u8> {
    boxes
        .iter()
        .enumerate()
        .map(|(i, b)| b ^ labels[i % labels.len().max(1)])
        .collect()
}

/// Stand-in render pass.
fn render(blurred: &[u8]) -> Vec<u8> {
    blurred.iter().map(|b| b.wrapping_add(1)).collect()
}

// --- shared input/split helpers --------------------------------------

/// Fan-in payloads of data `name`, ordered by the **numeric branch
/// suffix** of the producer (`name@fn_3` → 3). `inputs_named` orders
/// lexicographically, which would put branch 10 before branch 2 — a
/// concatenating merge needs the numeric order to reproduce the
/// partitioner's span order at any fan-out.
pub(crate) fn branch_ordered<'a>(ctx: &'a FluContext, name: &str) -> Vec<&'a Bytes> {
    let prefix = format!("{name}@");
    let mut keyed: Vec<(usize, &Bytes)> = ctx
        .inputs()
        .filter(|(k, _)| k.starts_with(&prefix))
        .map(|(k, v)| (branch_index(k), v))
        .collect();
    keyed.sort_by_key(|(n, _)| *n);
    keyed.into_iter().map(|(_, v)| v).collect()
}

/// The trailing decimal of a sink key (`count@wc_count_12` → 12; no
/// trailing digits → 0).
fn branch_index(key: &str) -> usize {
    let digits = key.bytes().rev().take_while(u8::is_ascii_digit).count();
    key[key.len() - digits..].parse().unwrap_or(0)
}

/// Splits `len` bytes into `n` contiguous spans whose sizes differ by at
/// most one byte (the partitioners of vid and svd).
fn even_spans(len: usize, n: usize) -> Vec<(usize, usize)> {
    let base = len / n;
    let extra = len % n;
    let mut spans = Vec::with_capacity(n);
    let mut lo = 0;
    for i in 0..n {
        let hi = lo + base + usize::from(i < extra);
        spans.push((lo, hi));
        lo = hi;
    }
    spans
}

/// A deterministic pseudo-text corpus of roughly `bytes` bytes with a
/// skewed word-frequency distribution.
fn corpus(bytes: usize) -> Vec<u8> {
    const VOCAB: [&str; 12] = [
        "serverless",
        "workflow",
        "dataflow",
        "function",
        "container",
        "latency",
        "throughput",
        "pipe",
        "sink",
        "engine",
        "node",
        "fabric",
    ];
    let mut out = Vec::with_capacity(bytes + 16);
    let mut s = 0x243f6a8885a308d3u64;
    while out.len() < bytes {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Square the draw so low indices dominate (Zipf-ish skew).
        let r = ((s >> 33) as f64 / (1u64 << 31) as f64).powi(2);
        let w = VOCAB[(r * VOCAB.len() as f64) as usize % VOCAB.len()];
        out.extend_from_slice(w.as_bytes());
        out.push(b' ');
    }
    out.truncate(bytes);
    out
}

/// Deterministic pseudo-random payload bytes.
pub(crate) fn noise(bytes: usize, seed: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes + 8);
    let mut s = seed | 1;
    while out.len() < bytes {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.extend_from_slice(&s.to_le_bytes());
    }
    out.truncate(bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_index_orders_double_digit_branches_numerically() {
        let mut keys = vec![
            "factors@svd_block_10",
            "factors@svd_block_2",
            "factors@svd_block_0",
            "factors@svd_block_11",
        ];
        keys.sort_by_key(|k| branch_index(k));
        assert_eq!(
            keys,
            vec![
                "factors@svd_block_0",
                "factors@svd_block_2",
                "factors@svd_block_10",
                "factors@svd_block_11",
            ]
        );
        assert_eq!(branch_index("out@merge"), 0);
    }

    #[test]
    fn even_spans_cover_exactly() {
        for (len, n) in [(0usize, 3usize), (10, 3), (16, 4), (17, 4), (100, 8)] {
            let spans = even_spans(len, n);
            assert_eq!(spans.len(), n);
            assert_eq!(spans.first().unwrap().0, 0);
            assert_eq!(spans.last().unwrap().1, len);
            for w in spans.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
        }
    }

    #[test]
    fn all_benchmarks_complete_on_three_spread_nodes() {
        for bench in Benchmark::ALL {
            let cfg = LiveClusterConfig {
                payload_bytes: 96 * 1024,
                ..LiveClusterConfig::default()
            };
            let report = Scenario::live_cluster(bench, &cfg);
            assert_eq!(report.requests, 1);
            assert!(report.output_bytes > 0, "{bench}: empty output");
            assert!(
                report.stats.remote_bytes > 0,
                "{bench}: spread placement shipped nothing across nodes"
            );
        }
    }

    #[test]
    fn single_node_run_uses_no_remote_pipe() {
        let cfg = LiveClusterConfig {
            nodes: 1,
            placement: LivePlacement::SingleNode,
            payload_bytes: 64 * 1024,
            ..LiveClusterConfig::default()
        };
        let report = Scenario::live_cluster(Benchmark::Vid, &cfg);
        assert_eq!(report.stats.remote_pipe_transfers, 0);
        assert_eq!(report.stats.remote_bytes, 0);
        assert!(report.stats.local_pipe_transfers > 0);
    }

    #[test]
    fn wc_spread_exercises_remote_and_direct_pipes() {
        let cfg = LiveClusterConfig {
            payload_bytes: 256 * 1024,
            requests: 2,
            ..LiveClusterConfig::default()
        };
        let report = Scenario::live_cluster(Benchmark::Wc, &cfg);
        // 64 KiB shards stream remotely; the small count tables cross on
        // the direct socket.
        assert!(report.stats.remote_pipe_transfers > 0);
        assert!(report.stats.direct_socket_transfers > 0);
        assert!(report.stats.remote_chunks >= report.stats.remote_pipe_transfers);
    }
}
