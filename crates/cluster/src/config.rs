//! Cluster, node, container and storage configuration.
//!
//! Defaults follow the paper's testbed (§9.1): three 16-core/64 GB worker
//! nodes, one backend storage node, and containers whose CPU share and
//! network bandwidth scale linearly with their memory size — 0.1 core and
//! 40 Mbps per 128 MB.

use dataflower_sim::SimDuration;

/// Resource specification of a function container.
///
/// # Examples
///
/// ```
/// use dataflower_cluster::ContainerSpec;
///
/// let c = ContainerSpec::with_memory_mb(256);
/// assert!((c.cores() - 0.2).abs() < 1e-12);
/// assert!((c.bandwidth_bytes_per_sec() - 2.0 * 40e6 / 8.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContainerSpec {
    /// Container memory, MB. CPU and bandwidth derive from this (§9.1).
    pub memory_mb: u32,
}

impl ContainerSpec {
    /// Creates a spec with the given memory size.
    ///
    /// # Panics
    ///
    /// Panics if `memory_mb` is zero.
    pub fn with_memory_mb(memory_mb: u32) -> Self {
        assert!(memory_mb > 0, "container memory must be positive");
        ContainerSpec { memory_mb }
    }

    /// CPU share: 0.1 core per 128 MB.
    pub fn cores(&self) -> f64 {
        self.memory_mb as f64 / 128.0 * 0.1
    }

    /// Network bandwidth: 40 Mbps per 128 MB, in bytes per second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        self.memory_mb as f64 / 128.0 * 40e6 / 8.0
    }

    /// Container memory in GB (for GB·s cost accounting).
    pub fn memory_gb(&self) -> f64 {
        self.memory_mb as f64 / 1024.0
    }
}

impl Default for ContainerSpec {
    /// The paper's baseline 128 MB container.
    fn default() -> Self {
        ContainerSpec { memory_mb: 128 }
    }
}

/// Resource capacity of a worker node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Physical cores.
    pub cores: f64,
    /// Physical memory, MB.
    pub memory_mb: f64,
    /// NIC bandwidth in bytes per second (each direction).
    pub nic_bytes_per_sec: f64,
    /// Intra-node data path bandwidth (local pipe / shared memory).
    pub loopback_bytes_per_sec: f64,
    /// Local VM-storage (SSD) bandwidth, shared by all disk traffic on
    /// the node (the paper's 200 GB / 3000 IOPS SSD; SONIC's data path).
    pub disk_bytes_per_sec: f64,
}

impl Default for NodeSpec {
    /// A worker node per §9.1: 16 cores, 64 GB, 10 Gbps NIC, fast local
    /// path, SSD-class local storage.
    fn default() -> Self {
        NodeSpec {
            cores: 16.0,
            memory_mb: 64.0 * 1024.0,
            nic_bytes_per_sec: 10e9 / 8.0,
            loopback_bytes_per_sec: 2e9,
            disk_bytes_per_sec: 18e6,
        }
    }
}

/// Backend storage node model (CouchDB in the paper's control-flow
/// setups; the Kafka broker node for DataFlower's cross-node pipes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageSpec {
    /// Effective backend-storage service rate in bytes per second (each
    /// direction). Shared by all concurrent Get/Put traffic — the
    /// contention source of §3.2.1.
    pub nic_bytes_per_sec: f64,
    /// Fixed per-operation access latency (request handling, indexing).
    pub op_latency: SimDuration,
    /// Effective throughput of the Kafka broker that replaces the backend
    /// store for DataFlower's cross-node pipe connectors (§8). Kafka is a
    /// streaming log, an order of magnitude faster than the document
    /// store, but still finite.
    pub broker_bytes_per_sec: f64,
}

impl Default for StorageSpec {
    /// CouchDB-class effective service rate: the document store serves
    /// REST attachments far below NIC line rate, which is exactly the
    /// "limited I/O performance" contention source of §3.2.1.
    fn default() -> Self {
        StorageSpec {
            nic_bytes_per_sec: 40e6,
            op_latency: SimDuration::from_millis(4),
            broker_bytes_per_sec: 150e6,
        }
    }
}

/// Full cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Worker nodes (3 in the paper).
    pub workers: Vec<NodeSpec>,
    /// Backend storage node.
    pub storage: StorageSpec,
    /// Container cold start time (image pull cached; namespace + runtime +
    /// user env setup).
    pub cold_start: SimDuration,
    /// Keep-alive window before an idle container is recycled (§8: 15 min).
    pub keep_alive: SimDuration,
    /// Pipe/connector establishment latency for direct data passing.
    pub pipe_setup_latency: SimDuration,
    /// Latency of the ≤16 KiB direct-socket path (§7).
    pub direct_latency: SimDuration,
    /// Threshold below which the DLU bypasses the pipe connector (§7).
    pub direct_threshold_bytes: f64,
    /// Multiplicative jitter spread applied to compute times.
    pub compute_jitter: f64,
    /// Multiplicative jitter spread applied to cold starts.
    pub cold_start_jitter: f64,
    /// Record per-event usage samples (Fig. 2b) — costs memory.
    pub trace_usage: bool,
    /// Record per-function trigger timestamps (Fig. 2c / Fig. 13).
    pub trace_triggers: bool,
    /// RNG seed for the whole run.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: vec![NodeSpec::default(); 3],
            storage: StorageSpec::default(),
            cold_start: SimDuration::from_millis(350),
            keep_alive: SimDuration::from_secs(15 * 60),
            pipe_setup_latency: SimDuration::from_millis(2),
            direct_latency: SimDuration::from_millis(1),
            direct_threshold_bytes: 16.0 * 1024.0,
            compute_jitter: 0.04,
            cold_start_jitter: 0.15,
            trace_usage: false,
            trace_triggers: false,
            seed: 0xDA7A_F10E,
        }
    }
}

impl ClusterConfig {
    /// A single-worker configuration (used by the Fig. 13 single-node
    /// experiment).
    pub fn single_node() -> Self {
        ClusterConfig {
            workers: vec![NodeSpec::default()],
            ..ClusterConfig::default()
        }
    }

    /// Sets the seed (builder-style convenience).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_spec_scales_linearly() {
        let base = ContainerSpec::default();
        let big = ContainerSpec::with_memory_mb(640);
        assert!((big.cores() / base.cores() - 5.0).abs() < 1e-12);
        assert!(
            (big.bandwidth_bytes_per_sec() / base.bandwidth_bytes_per_sec() - 5.0).abs() < 1e-12
        );
        assert!((base.memory_gb() - 0.125).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_memory_rejected() {
        ContainerSpec::with_memory_mb(0);
    }

    #[test]
    fn default_cluster_matches_paper_shape() {
        let c = ClusterConfig::default();
        assert_eq!(c.workers.len(), 3);
        assert_eq!(c.keep_alive, SimDuration::from_secs(900));
        assert_eq!(c.direct_threshold_bytes, 16384.0);
        assert_eq!(ClusterConfig::single_node().workers.len(), 1);
    }
}
