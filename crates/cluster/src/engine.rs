//! The interface every orchestration engine implements.

use crate::ids::{ContainerId, RequestId};
use crate::world::{TransferDone, World};

/// Event-driven orchestration engine.
///
/// The driver ([`run`](crate::run)) owns a [`World`] and an `Orchestrator`
/// and dispatches every simulation event to exactly one callback. Engines
/// hold all paradigm-specific state (function readiness, container pools,
/// pending transfers) themselves and mutate the world only through its
/// public methods.
///
/// Tokens and tags are opaque `u64`s chosen by the engine when it calls
/// [`World::begin_compute`], [`World::timer`] or [`World::transfer`]; they
/// come back verbatim in the matching callback.
pub trait Orchestrator {
    /// Engine name (used in reports and figures).
    fn name(&self) -> &str;

    /// A workflow request arrived.
    fn on_request(&mut self, world: &mut World, req: RequestId);

    /// A container finished cold starting and is now idle.
    fn on_cold_start_done(&mut self, world: &mut World, container: ContainerId);

    /// A container's FLU finished the computation started with `token`.
    /// The container is already back in the idle state.
    fn on_compute_done(&mut self, world: &mut World, container: ContainerId, token: u64);

    /// A transfer started with [`World::transfer`] delivered its last byte.
    fn on_flow_done(&mut self, world: &mut World, done: TransferDone);

    /// An engine timer fired.
    fn on_timer(&mut self, world: &mut World, token: u64);
}
