//! # dataflower-cluster
//!
//! The simulated serverless cluster substrate shared by the DataFlower
//! engine and the control-flow baselines.
//!
//! * [`World`] — nodes, containers, requests, the flow network and all
//!   cost accounting, mutated through a narrow API;
//! * [`Orchestrator`] — the event-driven trait every engine implements;
//! * [`run`] / [`run_to_idle`] — the deterministic driver loop;
//! * [`Placement`] — the function→node mapping interface (§6.1's load
//!   balancer hook) with the static, single-node and least-loaded
//!   policies;
//! * [`RunReport`] — per-run measurements (latency samples, throughput,
//!   GB·s, MB·s).
//!
//! The resource model follows the paper's testbed (§9.1): containers get
//! 0.1 core and 40 Mbps per 128 MB of memory; worker nodes partition CPU
//! and memory exclusively (§9.8); every transfer shares bandwidth max–min
//! fairly on its path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod driver;
mod engine;
mod ids;
mod placement;
mod report;
mod world;

pub use config::{ClusterConfig, ContainerSpec, NodeSpec, StorageSpec};
pub use driver::{run, run_to_idle};
pub use engine::Orchestrator;
pub use ids::{ContainerId, NodeId, RequestId, WfId};
pub use placement::{
    LeastLoadedPlacement, LoadAwarePlacement, Placement, SingleNodePlacement, SpreadPlacement,
};
pub use report::{RunReport, WorkflowStats};
pub use world::{
    Container, ContainerState, Request, Route, TransferDone, TriggerKind, TriggerRecord,
    UsageSample, World,
};
