//! Identifier newtypes for cluster entities.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            pub const fn from_index(i: usize) -> Self {
                $name(i as u32)
            }

            /// The raw index backing this id.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A worker node in the cluster.
    NodeId,
    "node#"
);
id_type!(
    /// A function container instance.
    ContainerId,
    "ctr#"
);
id_type!(
    /// One workflow invocation (the paper's `RequestID`).
    RequestId,
    "req#"
);
id_type!(
    /// A workflow registered with the world (several co-run in Fig. 18).
    WfId,
    "wf#"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let n = NodeId::from_index(2);
        assert_eq!(n.index(), 2);
        assert_eq!(n.to_string(), "node#2");
        assert_eq!(RequestId::from_index(7).to_string(), "req#7");
        assert!(ContainerId::from_index(1) < ContainerId::from_index(2));
    }
}
