//! The simulation driver: pumps events and flow completions into an
//! [`Orchestrator`] until the horizon.

use dataflower_sim::SimTime;

use crate::engine::Orchestrator;
use crate::report::RunReport;
use crate::world::{Event, TransferDone, World};

/// Runs `engine` over `world` until no work remains or `deadline` is
/// reached, then returns the collected [`RunReport`].
///
/// The driver always processes whichever of (next queued event, next flow
/// completion) is earlier, so the event order is a pure function of the
/// model — reruns with the same seed are bit-identical.
///
/// # Examples
///
/// See the engine crates (`dataflower`, `dataflower-baselines`) for full
/// end-to-end examples; the driver itself is engine-agnostic.
pub fn run<E: Orchestrator + ?Sized>(
    world: &mut World,
    engine: &mut E,
    deadline: SimTime,
) -> RunReport {
    loop {
        let next_event = world.queue.next_time();
        let next_flow = world.net.next_completion();
        let step = match (next_event, next_flow) {
            (None, None) => break,
            (Some(te), Some(tf)) => {
                if tf <= te {
                    Step::Flows(tf)
                } else {
                    Step::Event
                }
            }
            (Some(_), None) => Step::Event,
            (None, Some(tf)) => Step::Flows(tf),
        };
        match step {
            Step::Flows(tf) => {
                if tf > deadline {
                    break;
                }
                world.set_now(tf);
                let completions = world.net.advance(tf);
                for c in completions {
                    engine.on_flow_done(
                        world,
                        TransferDone {
                            tag: c.tag,
                            bytes: c.bytes,
                            started: c.started,
                            at: c.at,
                        },
                    );
                }
            }
            Step::Event => {
                let Some((t, ev)) = peek_pop(world, deadline) else {
                    break;
                };
                world.set_now(t);
                dispatch(world, engine, ev);
            }
        }
        world.sample_usage();
    }
    // Horizon: the deadline for bounded runs; the last activity when the
    // run drained on its own (run_to_idle).
    let end = if deadline == SimTime::MAX {
        world.now()
    } else {
        deadline
    };
    if end > world.now() {
        world.set_now(end);
    }
    RunReport::collect(engine.name(), world, end)
}

/// Runs until the world is fully idle (no deadline). Intended for
/// fixed-size experiments where all load is pre-scheduled.
pub fn run_to_idle<E: Orchestrator + ?Sized>(world: &mut World, engine: &mut E) -> RunReport {
    run(world, engine, SimTime::MAX)
}

enum Step {
    Event,
    Flows(SimTime),
}

fn peek_pop(world: &mut World, deadline: SimTime) -> Option<(SimTime, Event)> {
    let t = world.queue.next_time()?;
    if t > deadline {
        return None;
    }
    world.queue.pop()
}

fn dispatch<E: Orchestrator + ?Sized>(world: &mut World, engine: &mut E, ev: Event) {
    match ev {
        Event::Arrival(req) => engine.on_request(world, req),
        Event::ColdStartDone(c) => {
            world.finish_cold_start(c);
            engine.on_cold_start_done(world, c);
        }
        Event::ComputeDone { container, token } => {
            world.finish_compute(container);
            engine.on_compute_done(world, container, token);
        }
        Event::EngineTimer { token } => engine.on_timer(world, token),
        Event::StartFlow { path, bytes, tag } => {
            let now = world.now();
            world.net.start_flow(now, &path, bytes, tag);
        }
        Event::DirectDone {
            tag,
            bytes,
            started,
        } => {
            let at = world.now();
            engine.on_flow_done(
                world,
                TransferDone {
                    tag,
                    bytes,
                    started,
                    at,
                },
            );
        }
    }
}
