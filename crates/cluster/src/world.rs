//! The simulated cluster state every orchestration engine operates on.
//!
//! [`World`] owns the event queue, the flow network, the nodes, containers
//! and requests, plus all cost accounting. Engines (the DataFlower engine
//! and the control-flow baselines) mutate the world exclusively through
//! its public methods; the [`Driver`](crate::Driver) pumps events and
//! dispatches them to the engine's [`Orchestrator`](crate::Orchestrator)
//! callbacks.

use std::sync::Arc;

use dataflower_metrics::StepIntegral;
use dataflower_sim::{
    CapacityPool, EventId, EventQueue, ExhaustedError, FlowNet, LinkId, SimDuration, SimRng,
    SimTime, Trace,
};
use dataflower_workflow::{ActiveGraph, FnId, Workflow};

use crate::config::{ClusterConfig, ContainerSpec};
use crate::ids::{ContainerId, NodeId, RequestId, WfId};

/// Lifecycle state of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// Cold start in progress; not yet usable.
    Starting,
    /// Warm and free to accept an invocation.
    Idle,
    /// Executing a function (its FLU is busy).
    Busy,
    /// Recycled; kept only for bookkeeping.
    Retired,
}

/// A function container instance placed on a node.
#[derive(Debug, Clone)]
pub struct Container {
    /// This container's id.
    pub id: ContainerId,
    /// Hosting worker node.
    pub node: NodeId,
    /// Workflow the function belongs to.
    pub wf: WfId,
    /// Function this container runs.
    pub func: FnId,
    /// Resource specification.
    pub spec: ContainerSpec,
    state: ContainerState,
    egress: LinkId,
    ingress: LinkId,
    started_at: SimTime,
}

impl Container {
    /// Current lifecycle state.
    pub fn state(&self) -> ContainerState {
        self.state
    }

    /// The container's egress bandwidth-cap link.
    pub fn egress_link(&self) -> LinkId {
        self.egress
    }

    /// The container's ingress bandwidth-cap link.
    pub fn ingress_link(&self) -> LinkId {
        self.ingress
    }

    /// When the container's cold start began.
    pub fn started_at(&self) -> SimTime {
        self.started_at
    }
}

/// One workflow invocation.
#[derive(Debug, Clone)]
pub struct Request {
    /// This request's id (the paper's `RequestID`).
    pub id: RequestId,
    /// Which workflow was invoked.
    pub wf: WfId,
    /// Size of the client payload in bytes.
    pub payload_bytes: f64,
    /// Per-request switch resolution.
    pub active: ActiveGraph,
    /// Arrival time.
    pub arrived: SimTime,
    /// Completion time, when finished.
    pub completed: Option<SimTime>,
    /// Closed-loop client that issued this request, if any.
    pub client: Option<u32>,
    /// Total input bytes accumulated per function (drives work models).
    pub input_bytes: Vec<f64>,
}

impl Request {
    /// End-to-end latency, if the request completed.
    pub fn latency(&self) -> Option<SimDuration> {
        self.completed.map(|c| c.duration_since(self.arrived))
    }
}

/// How a transfer is routed through the cluster (resolved to flow-network
/// links by [`World::transfer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Intra-node move over the local pipe / shared memory path.
    /// `via_container` applies the source container's egress cap (set it
    /// when the data leaves a running container; leave `None` for
    /// host-side moves such as cache loads).
    Local {
        /// The node the move happens on.
        node: NodeId,
        /// Source container whose egress cap throttles the move, if any.
        via_container: Option<ContainerId>,
    },
    /// Cross-node transfer from a container to the destination node's
    /// host-side data sink (DataFlower's remote pipe connector).
    Remote {
        /// Sending container.
        src: ContainerId,
        /// Receiving node.
        dst_node: NodeId,
    },
    /// Cross-node transfer from a host (e.g. SONIC's source-local storage)
    /// into a specific destination container.
    RemoteIntoContainer {
        /// Sending node.
        src_node: NodeId,
        /// Receiving container (its ingress cap applies).
        dst: ContainerId,
    },
    /// Upload from a container to the backend storage node (`Put()`).
    ToStorage {
        /// Sending container.
        src: ContainerId,
    },
    /// Download from the backend storage node into a container (`Get()`).
    FromStorage {
        /// Receiving container.
        dst: ContainerId,
    },
    /// Read from a node's local VM storage into a container — memory
    /// speed when co-located (page cache), or a peer-to-peer fetch that
    /// pays the source disk plus the network when remote (SONIC's
    /// fetch-on-trigger).
    DiskRead {
        /// Node whose disk holds the data.
        src_node: NodeId,
        /// Fetching container.
        dst: ContainerId,
    },
    /// Small-data direct socket (§7: payloads under 16 KiB skip the pipe
    /// connector): fixed latency, no bandwidth modeling.
    Direct,
}

/// Completion notification for a [`World::transfer`], delivered to
/// [`Orchestrator::on_flow_done`](crate::Orchestrator::on_flow_done).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferDone {
    /// The engine-supplied correlation tag.
    pub tag: u64,
    /// Bytes carried.
    pub bytes: f64,
    /// When the transfer was initiated.
    pub started: SimTime,
    /// When the last byte arrived.
    pub at: SimTime,
}

/// What a trigger-trace entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// All inputs of the function became available.
    Ready,
    /// The engine dispatched the function to a container (FLU start).
    Started,
    /// The function's computation finished (FLU end).
    Finished,
}

/// One entry of the trigger trace (Fig. 2c / Fig. 13 instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerRecord {
    /// Request the event belongs to.
    pub req: RequestId,
    /// Workflow of the request.
    pub wf: WfId,
    /// Function concerned.
    pub func: FnId,
    /// What happened.
    pub kind: TriggerKind,
}

/// A usage sample for Fig. 2b style timelines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageSample {
    /// Total cores busy across the cluster.
    pub busy_cores: f64,
    /// Total network rate in bytes per second.
    pub net_rate: f64,
}

#[derive(Debug)]
pub(crate) enum Event {
    Arrival(RequestId),
    ColdStartDone(ContainerId),
    ComputeDone {
        container: ContainerId,
        token: u64,
    },
    EngineTimer {
        token: u64,
    },
    StartFlow {
        path: Vec<LinkId>,
        bytes: f64,
        tag: u64,
    },
    DirectDone {
        tag: u64,
        bytes: f64,
        started: SimTime,
    },
}

#[derive(Debug)]
struct Node {
    cpu: CapacityPool,
    mem: CapacityPool,
    nic_in: LinkId,
    nic_out: LinkId,
    loopback: LinkId,
    disk: LinkId,
}

#[derive(Debug, Clone)]
struct ClientLoop {
    wf: WfId,
    payload: f64,
}

/// The simulated cluster: event queue, network, nodes, containers,
/// requests and accounting.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use dataflower_cluster::{ClusterConfig, ContainerSpec, NodeId, World};
/// use dataflower_sim::SimTime;
/// use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder};
///
/// let mut b = WorkflowBuilder::new("noop");
/// let f = b.function("f", WorkModel::fixed(0.1));
/// b.client_input(f, "in", SizeModel::Fixed(1024.0));
/// b.client_output(f, "out", SizeModel::Fixed(16.0));
/// let wf = Arc::new(b.build().unwrap());
///
/// let mut world = World::new(ClusterConfig::default());
/// let wf_id = world.add_workflow(wf);
/// let req = world.submit_request(wf_id, 1024.0, SimTime::ZERO);
/// assert_eq!(world.request(req).payload_bytes, 1024.0);
/// ```
#[derive(Debug)]
pub struct World {
    cfg: ClusterConfig,
    now: SimTime,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) net: FlowNet,
    rng: SimRng,
    nodes: Vec<Node>,
    storage_in: LinkId,
    storage_out: LinkId,
    broker_in: LinkId,
    broker_out: LinkId,
    containers: Vec<Container>,
    requests: Vec<Request>,
    workflows: Vec<Arc<Workflow>>,
    clients: Vec<ClientLoop>,
    mem_gb: StepIntegral,
    cache_mb: StepIntegral,
    cpu_busy: StepIntegral,
    triggers: Trace<TriggerRecord>,
    usage: Trace<UsageSample>,
    cold_starts: u64,
}

impl World {
    /// Creates a world from a configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        let mut net = FlowNet::new();
        let mut nodes = Vec::with_capacity(cfg.workers.len());
        for spec in &cfg.workers {
            nodes.push(Node {
                cpu: CapacityPool::new(spec.cores),
                mem: CapacityPool::new(spec.memory_mb),
                nic_in: net.add_link(spec.nic_bytes_per_sec),
                nic_out: net.add_link(spec.nic_bytes_per_sec),
                loopback: net.add_link(spec.loopback_bytes_per_sec),
                disk: net.add_link(spec.disk_bytes_per_sec),
            });
        }
        let storage_in = net.add_link(cfg.storage.nic_bytes_per_sec);
        let storage_out = net.add_link(cfg.storage.nic_bytes_per_sec);
        let broker_in = net.add_link(cfg.storage.broker_bytes_per_sec);
        let broker_out = net.add_link(cfg.storage.broker_bytes_per_sec);
        let rng = SimRng::seed_from(cfg.seed);
        World {
            cfg,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            net,
            rng,
            nodes,
            storage_in,
            storage_out,
            broker_in,
            broker_out,
            containers: Vec::new(),
            requests: Vec::new(),
            workflows: Vec::new(),
            clients: Vec::new(),
            mem_gb: StepIntegral::new(),
            cache_mb: StepIntegral::new(),
            cpu_busy: StepIntegral::new(),
            triggers: Trace::new(),
            usage: Trace::new(),
            cold_starts: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    pub(crate) fn set_now(&mut self, t: SimTime) {
        debug_assert!(t >= self.now);
        self.now = t;
    }

    /// The configuration this world was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The seeded random source (engines may draw from it).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Number of worker nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Unreserved cores on `node`.
    pub fn node_cpu_available(&self, node: NodeId) -> f64 {
        self.nodes[node.index()].cpu.available()
    }

    /// Unreserved memory (MB) on `node`.
    pub fn node_mem_available(&self, node: NodeId) -> f64 {
        self.nodes[node.index()].mem.available()
    }

    // ---- workflows & requests -------------------------------------------

    /// Registers a workflow; several may co-run (Fig. 18).
    pub fn add_workflow(&mut self, wf: Arc<Workflow>) -> WfId {
        self.workflows.push(wf);
        WfId::from_index(self.workflows.len() - 1)
    }

    /// The workflow registered as `w`.
    pub fn workflow(&self, w: WfId) -> &Arc<Workflow> {
        &self.workflows[w.index()]
    }

    /// Number of registered workflows.
    pub fn workflow_count(&self) -> usize {
        self.workflows.len()
    }

    /// Submits one invocation of `w` carrying `payload_bytes`, arriving at
    /// `at`. Switch groups are resolved immediately with the world RNG.
    pub fn submit_request(&mut self, w: WfId, payload_bytes: f64, at: SimTime) -> RequestId {
        self.submit_request_inner(w, payload_bytes, at, None)
    }

    fn submit_request_inner(
        &mut self,
        w: WfId,
        payload_bytes: f64,
        at: SimTime,
        client: Option<u32>,
    ) -> RequestId {
        let id = RequestId::from_index(self.requests.len());
        let wf = Arc::clone(&self.workflows[w.index()]);
        let rng = &mut self.rng;
        let active = wf.resolve_switches(|_, n| rng.index(n));
        self.requests.push(Request {
            id,
            wf: w,
            payload_bytes,
            active,
            arrived: at,
            completed: None,
            client,
            input_bytes: vec![0.0; wf.function_count()],
        });
        self.queue.schedule(at, Event::Arrival(id));
        id
    }

    /// Pre-schedules an open-loop (asynchronous) Poisson arrival process:
    /// `rpm` requests per minute for `duration`.
    pub fn schedule_open_loop(
        &mut self,
        w: WfId,
        payload_bytes: f64,
        rpm: f64,
        duration: SimDuration,
    ) {
        assert!(rpm > 0.0, "open-loop rate must be positive");
        let mean_gap = 60.0 / rpm;
        let mut t = 0.0;
        loop {
            t += self.rng.exp(mean_gap);
            if t >= duration.as_secs_f64() {
                break;
            }
            self.submit_request(w, payload_bytes, SimTime::from_micros((t * 1e6) as u64));
        }
    }

    /// Spawns `n` closed-loop (synchronous) clients: each immediately
    /// re-submits when its previous request completes.
    pub fn spawn_clients(&mut self, w: WfId, payload_bytes: f64, n: usize) {
        for i in 0..n {
            let ci = self.clients.len() as u32;
            self.clients.push(ClientLoop {
                wf: w,
                payload: payload_bytes,
            });
            // Stagger starts by a few ms so clients do not arrive as one
            // synchronized burst.
            let jitter = SimDuration::from_micros(i as u64 * 1_733 % 10_000);
            self.submit_request_inner(w, payload_bytes, SimTime::ZERO + jitter, Some(ci));
        }
    }

    /// The request with id `r`.
    pub fn request(&self, r: RequestId) -> &Request {
        &self.requests[r.index()]
    }

    /// Mutable access to a request (engines accumulate `input_bytes`).
    pub fn request_mut(&mut self, r: RequestId) -> &mut Request {
        &mut self.requests[r.index()]
    }

    /// All requests submitted so far.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Marks a request complete, recording latency and waking its
    /// closed-loop client, if any.
    ///
    /// # Panics
    ///
    /// Panics if called twice for the same request.
    pub fn complete_request(&mut self, r: RequestId) {
        let now = self.now;
        let req = &mut self.requests[r.index()];
        assert!(req.completed.is_none(), "request {r} completed twice");
        req.completed = Some(now);
        if let Some(ci) = req.client {
            let ClientLoop { wf, payload } = self.clients[ci as usize].clone();
            self.submit_request_inner(wf, payload, now, Some(ci));
        }
    }

    // ---- containers ------------------------------------------------------

    /// Cold-starts a container for `(wf, func)` on `node`.
    ///
    /// Reserves the node's CPU and memory, creates its bandwidth-cap
    /// links, begins the GB·s accounting and schedules the cold-start
    /// completion (jittered), delivered via
    /// [`Orchestrator::on_cold_start_done`](crate::Orchestrator::on_cold_start_done).
    ///
    /// # Errors
    ///
    /// Returns [`ExhaustedError`] when the node lacks CPU or memory; the
    /// node is left unchanged.
    pub fn start_container(
        &mut self,
        node: NodeId,
        wf: WfId,
        func: FnId,
        spec: ContainerSpec,
    ) -> Result<ContainerId, ExhaustedError> {
        let n = &mut self.nodes[node.index()];
        n.cpu.reserve(spec.cores())?;
        if let Err(e) = n.mem.reserve(spec.memory_mb as f64) {
            n.cpu.release(spec.cores());
            return Err(e);
        }
        let bw = spec.bandwidth_bytes_per_sec();
        let egress = self.net.add_link(bw);
        let ingress = self.net.add_link(bw);
        let id = ContainerId::from_index(self.containers.len());
        self.containers.push(Container {
            id,
            node,
            wf,
            func,
            spec,
            state: ContainerState::Starting,
            egress,
            ingress,
            started_at: self.now,
        });
        self.mem_gb.add(self.now.as_secs_f64(), spec.memory_gb());
        self.cold_starts += 1;
        let jit = self.rng.jitter(self.cfg.cold_start_jitter);
        let delay = SimDuration::from_secs_f64(self.cfg.cold_start.as_secs_f64() * jit);
        self.queue
            .schedule(self.now + delay, Event::ColdStartDone(id));
        Ok(id)
    }

    /// The container with id `c`.
    pub fn container(&self, c: ContainerId) -> &Container {
        &self.containers[c.index()]
    }

    /// All containers ever started.
    pub fn containers(&self) -> &[Container] {
        &self.containers
    }

    /// Recycles an idle container, releasing its resources.
    ///
    /// # Panics
    ///
    /// Panics if the container is busy or still starting — engines must
    /// only recycle idle containers (DataFlower additionally requires the
    /// DLU drained; that check lives in the engine).
    pub fn retire_container(&mut self, c: ContainerId) {
        let now = self.now.as_secs_f64();
        let ctr = &mut self.containers[c.index()];
        assert_eq!(
            ctr.state,
            ContainerState::Idle,
            "retiring container {c} in state {:?}",
            ctr.state
        );
        ctr.state = ContainerState::Retired;
        let (node, spec) = (ctr.node, ctr.spec);
        self.nodes[node.index()].cpu.release(spec.cores());
        self.nodes[node.index()].mem.release(spec.memory_mb as f64);
        self.mem_gb.add(now, -spec.memory_gb());
    }

    /// Starts executing `core_secs` of work on container `c`'s FLU. The
    /// completion (jittered) arrives via
    /// [`Orchestrator::on_compute_done`](crate::Orchestrator::on_compute_done)
    /// with the same `token`.
    ///
    /// # Panics
    ///
    /// Panics unless the container is idle.
    pub fn begin_compute(&mut self, c: ContainerId, core_secs: f64, token: u64) {
        let jit = self.rng.jitter(self.cfg.compute_jitter);
        let ctr = &mut self.containers[c.index()];
        assert_eq!(
            ctr.state,
            ContainerState::Idle,
            "begin_compute on container {c} in state {:?}",
            ctr.state
        );
        ctr.state = ContainerState::Busy;
        let secs = core_secs / ctr.spec.cores() * jit;
        let cores = ctr.spec.cores();
        self.cpu_busy.add(self.now.as_secs_f64(), cores);
        self.queue.schedule(
            self.now + SimDuration::from_secs_f64(secs),
            Event::ComputeDone {
                container: c,
                token,
            },
        );
    }

    pub(crate) fn finish_compute(&mut self, c: ContainerId) {
        let now = self.now.as_secs_f64();
        let ctr = &mut self.containers[c.index()];
        debug_assert_eq!(ctr.state, ContainerState::Busy);
        ctr.state = ContainerState::Idle;
        let cores = ctr.spec.cores();
        self.cpu_busy.add(now, -cores);
    }

    pub(crate) fn finish_cold_start(&mut self, c: ContainerId) {
        let ctr = &mut self.containers[c.index()];
        debug_assert_eq!(ctr.state, ContainerState::Starting);
        ctr.state = ContainerState::Idle;
    }

    // ---- timers & transfers ---------------------------------------------

    /// Schedules an engine timer delivered via
    /// [`Orchestrator::on_timer`](crate::Orchestrator::on_timer) with
    /// `token` after `delay`.
    pub fn timer(&mut self, delay: SimDuration, token: u64) -> EventId {
        self.queue
            .schedule(self.now + delay, Event::EngineTimer { token })
    }

    /// Cancels a pending timer; returns whether it was still pending.
    pub fn cancel_timer(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Starts a data transfer along `route`; completion arrives via
    /// [`Orchestrator::on_flow_done`](crate::Orchestrator::on_flow_done)
    /// with the same `tag`.
    ///
    /// Route-kind default setup delays apply (storage op latency, pipe
    /// establishment, direct-socket latency).
    pub fn transfer(&mut self, route: Route, bytes: f64, tag: u64) {
        let (path, delay) = match route {
            Route::Direct => {
                self.queue.schedule(
                    self.now + self.cfg.direct_latency,
                    Event::DirectDone {
                        tag,
                        bytes,
                        started: self.now,
                    },
                );
                return;
            }
            Route::Local {
                node,
                via_container,
            } => {
                let mut path = Vec::with_capacity(2);
                if let Some(c) = via_container {
                    path.push(self.containers[c.index()].egress);
                }
                path.push(self.nodes[node.index()].loopback);
                (path, SimDuration::ZERO)
            }
            Route::Remote { src, dst_node } => {
                // Cross-node pipe connectors stream through the Kafka
                // broker node (§8: the storage node is replaced with one
                // Kafka node for DataFlower).
                let ctr = &self.containers[src.index()];
                (
                    vec![
                        ctr.egress,
                        self.nodes[ctr.node.index()].nic_out,
                        self.broker_in,
                        self.broker_out,
                        self.nodes[dst_node.index()].nic_in,
                    ],
                    self.cfg.pipe_setup_latency,
                )
            }
            Route::RemoteIntoContainer { src_node, dst } => {
                let ctr = &self.containers[dst.index()];
                (
                    vec![
                        self.nodes[src_node.index()].nic_out,
                        self.nodes[ctr.node.index()].nic_in,
                        ctr.ingress,
                    ],
                    self.cfg.pipe_setup_latency,
                )
            }
            Route::ToStorage { src } => {
                let ctr = &self.containers[src.index()];
                (
                    vec![
                        ctr.egress,
                        self.nodes[ctr.node.index()].nic_out,
                        self.storage_in,
                    ],
                    self.cfg.storage.op_latency,
                )
            }
            Route::FromStorage { dst } => {
                let ctr = &self.containers[dst.index()];
                (
                    vec![
                        self.storage_out,
                        self.nodes[ctr.node.index()].nic_in,
                        ctr.ingress,
                    ],
                    self.cfg.storage.op_latency,
                )
            }
            Route::DiskRead { src_node, dst } => {
                let ctr = &self.containers[dst.index()];
                let path = if src_node == ctr.node {
                    // Page-cache hit: memory-speed local read (container
                    // TC shapes network traffic only).
                    vec![self.nodes[src_node.index()].loopback]
                } else {
                    // Cold peer-to-peer fetch: source disk + both NICs.
                    vec![
                        self.nodes[src_node.index()].disk,
                        self.nodes[src_node.index()].nic_out,
                        self.nodes[ctr.node.index()].nic_in,
                        ctr.ingress,
                    ]
                };
                (path, self.cfg.pipe_setup_latency)
            }
        };
        if delay.is_zero() {
            self.net.start_flow(self.now, &path, bytes, tag);
        } else {
            self.queue
                .schedule(self.now + delay, Event::StartFlow { path, bytes, tag });
        }
    }

    // ---- accounting ------------------------------------------------------

    /// Adds `bytes` to the host-side intermediate-data cache accounting
    /// (the Wait-Match memory / FaaSFlow cache of Fig. 14).
    pub fn cache_add(&mut self, bytes: f64) {
        self.cache_mb.add(self.now.as_secs_f64(), bytes / 1e6);
    }

    /// Removes `bytes` from the host cache accounting.
    pub fn cache_remove(&mut self, bytes: f64) {
        self.cache_mb.add(self.now.as_secs_f64(), -(bytes / 1e6));
    }

    /// Current bytes resident in host caches (MB).
    pub fn cache_resident_mb(&self) -> f64 {
        self.cache_mb.current()
    }

    /// Records a trigger-trace entry (no-op unless
    /// [`ClusterConfig::trace_triggers`] is set).
    pub fn note_trigger(&mut self, rec: TriggerRecord) {
        if self.cfg.trace_triggers {
            self.triggers.record(self.now, rec);
        }
    }

    /// The recorded trigger trace.
    pub fn trigger_trace(&self) -> &Trace<TriggerRecord> {
        &self.triggers
    }

    /// The recorded usage trace (Fig. 2b).
    pub fn usage_trace(&self) -> &Trace<UsageSample> {
        &self.usage
    }

    pub(crate) fn sample_usage(&mut self) {
        if self.cfg.trace_usage {
            let sample = UsageSample {
                busy_cores: self.cpu_busy.current(),
                net_rate: self.net.total_rate(),
            };
            self.usage.record(self.now, sample);
        }
    }

    /// Container-memory integral so far, GB·s, evaluated at `end`.
    pub fn memory_gb_s(&self, end: SimTime) -> f64 {
        self.mem_gb.finish(end.as_secs_f64())
    }

    /// Host-cache integral so far, MB·s, evaluated at `end`.
    pub fn cache_mb_s(&self, end: SimTime) -> f64 {
        self.cache_mb.finish(end.as_secs_f64())
    }

    /// Busy-CPU integral so far, core·s, evaluated at `end`.
    pub fn cpu_core_s(&self, end: SimTime) -> f64 {
        self.cpu_busy.finish(end.as_secs_f64())
    }

    /// Total cold starts performed.
    pub fn cold_start_count(&self) -> u64 {
        self.cold_starts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder};

    fn tiny_workflow() -> Arc<Workflow> {
        let mut b = WorkflowBuilder::new("tiny");
        let f = b.function("f", WorkModel::fixed(0.1));
        b.client_input(f, "in", SizeModel::Fixed(1024.0));
        b.client_output(f, "out", SizeModel::Fixed(16.0));
        Arc::new(b.build().unwrap())
    }

    fn world() -> (World, WfId) {
        let mut w = World::new(ClusterConfig::default());
        let wf = w.add_workflow(tiny_workflow());
        (w, wf)
    }

    #[test]
    fn container_lifecycle_accounting() {
        let (mut w, wf) = world();
        let f = w.workflow(wf).function_by_name("f").unwrap();
        let node = NodeId::from_index(0);
        let cpu0 = w.node_cpu_available(node);
        let c = w
            .start_container(node, wf, f, ContainerSpec::default())
            .unwrap();
        assert_eq!(w.container(c).state(), ContainerState::Starting);
        assert!(w.node_cpu_available(node) < cpu0);
        w.finish_cold_start(c);
        assert_eq!(w.container(c).state(), ContainerState::Idle);
        w.retire_container(c);
        assert_eq!(w.container(c).state(), ContainerState::Retired);
        assert_eq!(w.node_cpu_available(node), cpu0);
        assert_eq!(w.cold_start_count(), 1);
    }

    #[test]
    fn placement_failure_leaves_node_clean() {
        let (mut w, wf) = world();
        let f = w.workflow(wf).function_by_name("f").unwrap();
        let node = NodeId::from_index(0);
        let huge = ContainerSpec::with_memory_mb(128 * 1024); // 12.8 cores, 128 GB
        let err = w.start_container(node, wf, f, huge).unwrap_err();
        assert!(err.requested > err.available);
        assert_eq!(w.node_mem_available(node), 64.0 * 1024.0);
        assert_eq!(w.node_cpu_available(node), 16.0);
    }

    #[test]
    #[should_panic(expected = "begin_compute")]
    fn compute_requires_idle() {
        let (mut w, wf) = world();
        let f = w.workflow(wf).function_by_name("f").unwrap();
        let c = w
            .start_container(NodeId::from_index(0), wf, f, ContainerSpec::default())
            .unwrap();
        w.begin_compute(c, 0.1, 0); // still Starting → panic
    }

    #[test]
    fn request_bookkeeping() {
        let (mut w, wf) = world();
        let r = w.submit_request(wf, 2048.0, SimTime::from_secs(1));
        assert_eq!(w.request(r).arrived, SimTime::from_secs(1));
        assert!(w.request(r).latency().is_none());
        w.set_now(SimTime::from_secs(3));
        w.complete_request(r);
        assert_eq!(w.request(r).latency().unwrap(), SimDuration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_panics() {
        let (mut w, wf) = world();
        let r = w.submit_request(wf, 1.0, SimTime::ZERO);
        w.complete_request(r);
        w.complete_request(r);
    }

    #[test]
    fn closed_loop_resubmits() {
        let (mut w, wf) = world();
        w.spawn_clients(wf, 100.0, 2);
        assert_eq!(w.requests().len(), 2);
        let first = w.requests()[0].id;
        w.set_now(SimTime::from_secs(1));
        w.complete_request(first);
        assert_eq!(w.requests().len(), 3, "client resubmitted");
        assert_eq!(w.requests()[2].client, Some(0));
    }

    #[test]
    fn open_loop_schedules_poisson_arrivals() {
        let (mut w, wf) = world();
        w.schedule_open_loop(wf, 100.0, 600.0, SimDuration::from_secs(60));
        // 600 rpm for 60 s ≈ 600 arrivals; allow generous tolerance.
        let n = w.requests().len();
        assert!((450..=750).contains(&n), "n={n}");
        assert!(w
            .requests()
            .iter()
            .all(|r| r.arrived < SimTime::from_secs(60)));
    }

    #[test]
    fn cache_accounting_integrates() {
        let (mut w, _) = world();
        w.cache_add(2e6); // 2 MB at t=0
        w.set_now(SimTime::from_secs(5));
        w.cache_remove(2e6);
        assert!((w.cache_mb_s(SimTime::from_secs(10)) - 10.0).abs() < 1e-9);
        assert_eq!(w.cache_resident_mb(), 0.0);
    }

    #[test]
    fn memory_integral_counts_containers() {
        let (mut w, wf) = world();
        let f = w.workflow(wf).function_by_name("f").unwrap();
        let c = w
            .start_container(NodeId::from_index(0), wf, f, ContainerSpec::default())
            .unwrap();
        w.finish_cold_start(c);
        // 0.125 GB for 8 s = 1 GB·s.
        w.set_now(SimTime::from_secs(8));
        w.retire_container(c);
        assert!((w.memory_gb_s(SimTime::from_secs(8)) - 1.0).abs() < 1e-9);
    }
}
