//! End-of-run measurement reports.

use dataflower_metrics::Samples;
use dataflower_sim::SimTime;

use crate::world::World;

/// Per-workflow outcome statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkflowStats {
    /// Workflow name.
    pub name: String,
    /// Requests that finished within the horizon.
    pub completed: usize,
    /// Requests still in flight at the horizon (the paper's "timeouts" —
    /// missing points in Fig. 10/11 mean exactly this).
    pub unfinished: usize,
    /// End-to-end latencies of completed requests, seconds.
    pub latency: Samples,
    /// Completed requests per minute over the horizon.
    pub throughput_rpm: f64,
}

impl WorkflowStats {
    /// Fraction of issued requests that completed.
    pub fn completion_rate(&self) -> f64 {
        let total = self.completed + self.unfinished;
        if total == 0 {
            0.0
        } else {
            self.completed as f64 / total as f64
        }
    }
}

/// Everything measured over one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Engine that produced the run.
    pub engine: String,
    /// Measurement horizon in seconds.
    pub horizon_secs: f64,
    /// Per-workflow statistics, in registration order.
    pub per_workflow: Vec<WorkflowStats>,
    /// Container-memory cost, GB·s (Fig. 10 lower panels).
    pub memory_gb_s: f64,
    /// Host-side intermediate-data cache cost, MB·s (Fig. 14).
    pub cache_mb_s: f64,
    /// Busy-CPU integral, core·s.
    pub cpu_core_s: f64,
    /// Containers cold-started during the run.
    pub cold_starts: u64,
}

impl RunReport {
    /// Builds a report from a world at horizon `end`.
    pub fn collect(engine: &str, world: &World, end: SimTime) -> RunReport {
        let horizon = end.as_secs_f64();
        let mut per_workflow: Vec<WorkflowStats> = (0..world.workflow_count())
            .map(|i| WorkflowStats {
                name: world.workflow(crate::WfId::from_index(i)).name().to_owned(),
                ..WorkflowStats::default()
            })
            .collect();
        for req in world.requests() {
            let stats = &mut per_workflow[req.wf.index()];
            match req.latency() {
                Some(lat) => {
                    stats.completed += 1;
                    stats.latency.push(lat.as_secs_f64());
                }
                None => stats.unfinished += 1,
            }
        }
        for stats in &mut per_workflow {
            stats.throughput_rpm = if horizon > 0.0 {
                stats.completed as f64 / (horizon / 60.0)
            } else {
                0.0
            };
        }
        RunReport {
            engine: engine.to_owned(),
            horizon_secs: horizon,
            per_workflow,
            memory_gb_s: world.memory_gb_s(end),
            cache_mb_s: world.cache_mb_s(end),
            cpu_core_s: world.cpu_core_s(end),
            cold_starts: world.cold_start_count(),
        }
    }

    /// Statistics for the workflow named `name`, if present.
    pub fn workflow(&self, name: &str) -> Option<&WorkflowStats> {
        self.per_workflow.iter().find(|s| s.name == name)
    }

    /// Statistics of the first (often only) workflow.
    ///
    /// # Panics
    ///
    /// Panics when the run had no workflows.
    pub fn primary(&self) -> &WorkflowStats {
        self.per_workflow.first().expect("run had no workflows")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_rate_handles_empty() {
        let s = WorkflowStats::default();
        assert_eq!(s.completion_rate(), 0.0);
    }

    #[test]
    fn completion_rate_math() {
        let s = WorkflowStats {
            completed: 3,
            unfinished: 1,
            ..WorkflowStats::default()
        };
        assert_eq!(s.completion_rate(), 0.75);
    }
}
