//! Function-to-node placement policies (the paper's "function mapping",
//! §6.1: DataFlower exposes an open interface to the upper load balancer).

use dataflower_workflow::FnId;

use crate::ids::{NodeId, WfId};
use crate::world::World;

/// Decides which node hosts containers of a given function.
///
/// Implementations may consult live world state (load-aware policies) or
/// be purely static (the default routing table of Fig. 8).
pub trait Placement {
    /// Node for containers of `(wf, func)`.
    fn node_for(&mut self, world: &World, wf: WfId, func: FnId) -> NodeId;
}

/// Static spread: function *k* of a workflow lives on node `k mod N`, the
/// deterministic routing-table mapping of Fig. 8. Successive functions of
/// a pipeline land on different nodes, exercising cross-node data-flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpreadPlacement;

impl Placement for SpreadPlacement {
    fn node_for(&mut self, world: &World, wf: WfId, func: FnId) -> NodeId {
        let n = world.node_count();
        NodeId::from_index((func.index() + wf.index()) % n)
    }
}

/// Forces every function onto one node (the Fig. 13 single-node setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleNodePlacement(pub NodeId);

impl Default for SingleNodePlacement {
    fn default() -> Self {
        SingleNodePlacement(NodeId::from_index(0))
    }
}

impl Placement for SingleNodePlacement {
    fn node_for(&mut self, _world: &World, _wf: WfId, _func: FnId) -> NodeId {
        self.0
    }
}

/// Load-aware: picks the node with the most available CPU, breaking ties
/// by index. Used when scaling out under pressure so new containers land
/// on the least-loaded machine.
///
/// The live runtime's counterpart is the `dataflower_rt::LoadAware`
/// placement policy, which greedily bin-packs functions onto the
/// least-loaded node of a per-node base-load vector — the two policies
/// share the load-aware name so simulated and live placement stay
/// recognizably the same knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadAwarePlacement;

/// Former name of [`LoadAwarePlacement`], kept so existing call sites and
/// scripts keep compiling.
pub type LeastLoadedPlacement = LoadAwarePlacement;

impl Placement for LoadAwarePlacement {
    fn node_for(&mut self, world: &World, _wf: WfId, _func: FnId) -> NodeId {
        let mut best = NodeId::from_index(0);
        let mut best_cpu = f64::NEG_INFINITY;
        for i in 0..world.node_count() {
            let id = NodeId::from_index(i);
            let cpu = world.node_cpu_available(id);
            if cpu > best_cpu {
                best_cpu = cpu;
                best = id;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    fn world() -> World {
        World::new(ClusterConfig::default())
    }

    #[test]
    fn spread_is_stable_and_covers_nodes() {
        let w = world();
        let mut p = SpreadPlacement;
        let wf = WfId::from_index(0);
        let nodes: Vec<usize> = (0..6)
            .map(|i| p.node_for(&w, wf, fn_id(i)).index())
            .collect();
        assert_eq!(nodes, vec![0, 1, 2, 0, 1, 2]);
        // Stable on repeat.
        assert_eq!(p.node_for(&w, wf, fn_id(4)).index(), 1);
    }

    #[test]
    fn single_node_pins() {
        let w = world();
        let mut p = SingleNodePlacement::default();
        assert_eq!(p.node_for(&w, WfId::from_index(0), fn_id(5)).index(), 0);
    }

    #[test]
    fn least_loaded_prefers_free_cpu() {
        let w = world();
        let mut p = LoadAwarePlacement;
        // All equal → first node.
        assert_eq!(p.node_for(&w, WfId::from_index(0), fn_id(0)).index(), 0);
    }

    fn fn_id(i: usize) -> FnId {
        use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder};
        // FnId has no public constructor; mint one via a throwaway workflow.
        let mut b = WorkflowBuilder::new("ids");
        let mut last = None;
        for k in 0..=i {
            let f = b.function(format!("f{k}"), WorkModel::fixed(0.1));
            b.client_input(f, "in", SizeModel::Fixed(1.0));
            b.client_output(f, "out", SizeModel::Fixed(1.0));
            last = Some(f);
        }
        let _ = b.build().unwrap();
        last.unwrap()
    }
}
