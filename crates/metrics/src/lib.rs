//! # dataflower-metrics
//!
//! Measurement plumbing for the DataFlower reproduction: sample
//! collections with exact percentiles ([`Samples`]), time-weighted step
//! integrals for GB·s / MB·s cost metrics ([`StepIntegral`]), per-key
//! step timelines for scaling histories ([`Timeline`]), and table
//! rendering for the figure harness ([`Table`]).
//!
//! # Examples
//!
//! ```
//! use dataflower_metrics::{Samples, StepIntegral};
//!
//! // Latencies of five requests.
//! let lat: Samples = [0.9, 1.1, 1.0, 1.3, 4.0].into_iter().collect();
//! assert!(lat.p99() > lat.p50());
//!
//! // 0.5 GB of containers alive from t=0 to t=10.
//! let mut mem = StepIntegral::new();
//! mem.set(0.0, 0.5);
//! assert_eq!(mem.finish(10.0), 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod integrate;
mod stats;
mod table;
mod timeline;

pub use histogram::{Histogram, QuantileTimeline};
pub use integrate::StepIntegral;
pub use stats::{Samples, StatSummary};
pub use table::{fmt_f, Table};
pub use timeline::Timeline;
