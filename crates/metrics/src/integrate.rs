//! Time-weighted integration of step functions.
//!
//! The paper's cost metrics are integrals: memory usage is "N GB occupied
//! for t seconds = N·t GB·s" (§9.2) and cache usage is MB·s (§9.4).
//! [`StepIntegral`] computes ∫ value·dt for a piecewise-constant signal.

/// Integrates a step function of virtual time.
///
/// Feed it `(time_seconds, new_value)` transitions in order; the integral
/// accumulates `previous_value × Δt` on each transition.
///
/// # Examples
///
/// 2 GB held for 3 s, then 1 GB for 2 s → 8 GB·s:
///
/// ```
/// use dataflower_metrics::StepIntegral;
///
/// let mut m = StepIntegral::new();
/// m.set(0.0, 2.0);
/// m.set(3.0, 1.0);
/// assert_eq!(m.finish(5.0), 8.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepIntegral {
    last_t: f64,
    value: f64,
    acc: f64,
    peak: f64,
    started: bool,
}

impl StepIntegral {
    /// Creates an integrator with value 0 at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the signal to `value` from time `t` onward.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes an earlier transition (time must be
    /// monotone) or if either argument is not finite.
    pub fn set(&mut self, t: f64, value: f64) {
        assert!(t.is_finite() && value.is_finite(), "non-finite integrand");
        if self.started {
            assert!(
                t >= self.last_t,
                "time went backwards: {t} < {}",
                self.last_t
            );
            self.acc += self.value * (t - self.last_t);
        }
        self.started = true;
        self.last_t = t;
        self.value = value;
        self.peak = self.peak.max(value);
    }

    /// Adds `delta` to the current value at time `t` (convenient for
    /// "container started/stopped" accounting).
    pub fn add(&mut self, t: f64, delta: f64) {
        let v = self.value + delta;
        self.set(t, v);
    }

    /// Current value of the step signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Highest value ever set.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Integral accumulated up to the last transition (not including the
    /// open interval since then).
    pub fn accumulated(&self) -> f64 {
        self.acc
    }

    /// Closes the signal at `end` and returns the total integral.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the last transition.
    pub fn finish(&self, end: f64) -> f64 {
        if !self.started {
            return 0.0;
        }
        assert!(
            end >= self.last_t,
            "end {end} precedes last transition {}",
            self.last_t
        );
        self.acc + self.value * (end - self.last_t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal() {
        let mut m = StepIntegral::new();
        m.set(0.0, 4.0);
        assert_eq!(m.finish(10.0), 40.0);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(StepIntegral::new().finish(100.0), 0.0);
    }

    #[test]
    fn add_and_remove() {
        let mut m = StepIntegral::new();
        m.add(0.0, 1.0); // one container of 1 GB
        m.add(2.0, 1.0); // second joins at t=2
        m.add(4.0, -2.0); // both leave at t=4
        assert_eq!(m.finish(10.0), 1.0 * 2.0 + 2.0 * 2.0);
        assert_eq!(m.peak(), 2.0);
        assert_eq!(m.current(), 0.0);
    }

    #[test]
    fn repeated_set_at_same_time() {
        let mut m = StepIntegral::new();
        m.set(0.0, 1.0);
        m.set(0.0, 5.0);
        assert_eq!(m.finish(1.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rejects_time_reversal() {
        let mut m = StepIntegral::new();
        m.set(5.0, 1.0);
        m.set(4.0, 1.0);
    }

    #[test]
    fn accumulated_excludes_open_interval() {
        let mut m = StepIntegral::new();
        m.set(0.0, 3.0);
        m.set(2.0, 1.0);
        assert_eq!(m.accumulated(), 6.0);
        assert_eq!(m.finish(3.0), 7.0);
    }
}
