//! Plain-text and Markdown table rendering for the figure harness.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Examples
///
/// ```
/// use dataflower_metrics::Table;
///
/// let mut t = Table::new(vec!["system", "p99 (s)"]);
/// t.row(vec!["DataFlower".into(), "4.21".into()]);
/// t.row(vec!["FaaSFlow".into(), "5.87".into()]);
/// let text = t.render();
/// assert!(text.contains("DataFlower"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Renders an aligned plain-text table.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", c, width = w[i]);
            }
            out.truncate(out.trim_end().len());
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let rule: String = w.iter().map(|n| "-".repeat(*n) + "  ").collect();
        out.push_str(rule.trim_end());
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders a GitHub-flavoured Markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---|")
                .collect::<String>()
                .trim_end_matches('|')
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a float with `digits` fractional digits (figure output helper).
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_pads_columns() {
        let mut t = Table::new(vec!["a", "bench"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("a    "));
        assert_eq!(lines[1], "-----  -----");
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.render_markdown();
        assert_eq!(md.lines().count(), 3);
        assert!(md.starts_with("| x | y |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new(vec!["only"]).row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
    }
}
