//! Per-key step timelines: how a gauge (replica count, queue depth,
//! pressure) evolved over a run, one series per key.
//!
//! The live runtime exports its per-function scaling history as a
//! [`Timeline`] so the workloads and the figure harness can ask "how many
//! replicas did `wc_start` have at t=0.3 s?" or "how many replica-seconds
//! did the burst cost?" without re-deriving the step semantics each time.

use std::collections::BTreeMap;

use crate::integrate::StepIntegral;
use crate::table::{fmt_f, Table};

/// A set of named step series: each key holds `(at_secs, value)` points,
/// and the series holds `value` from each point until the next one.
///
/// Points within one key are expected in non-decreasing time order (the
/// natural order of an event log); [`Timeline::record`] debug-asserts it.
///
/// # Examples
///
/// ```
/// use dataflower_metrics::Timeline;
///
/// let mut t = Timeline::new();
/// t.record("wc_start", 0.0, 1.0);
/// t.record("wc_start", 0.5, 2.0); // scale-out
/// t.record("wc_start", 2.0, 1.0); // scale-in
/// assert_eq!(t.value_at("wc_start", 1.0), 2.0);
/// assert_eq!(t.max_value("wc_start"), 2.0);
/// // 0.5 s at 1 replica + 1.5 s at 2 + 1.0 s at 1 = 4.5 replica-seconds.
/// assert!((t.integral("wc_start", 3.0) - 4.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    series: BTreeMap<String, Vec<(f64, f64)>>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Appends one point to `key`'s series.
    pub fn record(&mut self, key: impl Into<String>, at_secs: f64, value: f64) {
        let points = self.series.entry(key.into()).or_default();
        debug_assert!(
            points.last().map_or(true, |(t, _)| *t <= at_secs),
            "timeline points must arrive in time order"
        );
        points.push((at_secs, value));
    }

    /// The keys with at least one recorded point, in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// The raw `(at_secs, value)` points of `key` (empty if unknown).
    pub fn series(&self, key: &str) -> &[(f64, f64)] {
        self.series.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of keys tracked.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no point was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Step-interpolated value of `key` at `at_secs`: the value of the
    /// last point at or before that instant (0 before the first point or
    /// for an unknown key).
    pub fn value_at(&self, key: &str, at_secs: f64) -> f64 {
        self.series(key)
            .iter()
            .take_while(|(t, _)| *t <= at_secs)
            .last()
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }

    /// Largest value ever recorded for `key` (0 for an unknown key).
    pub fn max_value(&self, key: &str) -> f64 {
        self.series(key).iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }

    /// Time integral of `key`'s step series from its first point to
    /// `end_secs` — e.g. replica-seconds of a scaling series. An
    /// `end_secs` before the last recorded point is clamped up to it
    /// (events recorded after a caller's elapsed mark — a scale-in
    /// landing in a settle window — extend the horizon, never panic).
    pub fn integral(&self, key: &str, end_secs: f64) -> f64 {
        let mut m = StepIntegral::new();
        let mut last_t = end_secs;
        for (t, v) in self.series(key) {
            m.set(*t, *v);
            last_t = *t;
        }
        m.finish(end_secs.max(last_t))
    }

    /// Renders one row per key (points, peak, time integral to
    /// `end_secs`, clamped as in [`Timeline::integral`]) — the
    /// scaling-summary table of the elastic scenarios.
    pub fn summary_table(&self, end_secs: f64) -> Table {
        let mut t = Table::new(vec!["series", "points", "peak", "integral (·s)"]);
        for key in self.series.keys() {
            t.row(vec![
                key.clone(),
                self.series(key).len().to_string(),
                fmt_f(self.max_value(key), 1),
                fmt_f(self.integral(key, end_secs), 3),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_timeline_reads_zero() {
        let t = Timeline::new();
        assert!(t.is_empty());
        assert_eq!(t.value_at("ghost", 1.0), 0.0);
        assert_eq!(t.max_value("ghost"), 0.0);
        assert_eq!(t.integral("ghost", 5.0), 0.0);
        assert!(t.series("ghost").is_empty());
    }

    #[test]
    fn step_semantics_hold() {
        let mut t = Timeline::new();
        t.record("f", 1.0, 1.0);
        t.record("f", 2.0, 3.0);
        assert_eq!(t.value_at("f", 0.5), 0.0);
        assert_eq!(t.value_at("f", 1.0), 1.0);
        assert_eq!(t.value_at("f", 1.9), 1.0);
        assert_eq!(t.value_at("f", 10.0), 3.0);
        assert_eq!(t.max_value("f"), 3.0);
        // 1 s at 1 + 2 s at 3.
        assert!((t.integral("f", 4.0) - 7.0).abs() < 1e-12);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn integral_tolerates_end_before_last_point() {
        // A caller's elapsed mark can precede a late-recorded event (a
        // scale-in landing in a settle window): the horizon extends to
        // the last point instead of panicking.
        let mut t = Timeline::new();
        t.record("f", 0.0, 1.0);
        t.record("f", 2.0, 2.0);
        assert!((t.integral("f", 1.0) - 2.0).abs() < 1e-12); // clamped to 2.0
        assert!((t.integral("f", 3.0) - 4.0).abs() < 1e-12);
        let rendered = t.summary_table(1.0).render();
        assert!(rendered.contains('f'));
    }

    #[test]
    fn summary_table_lists_every_key() {
        let mut t = Timeline::new();
        t.record("a", 0.0, 1.0);
        t.record("b", 0.0, 2.0);
        let rendered = t.summary_table(1.0).render();
        assert!(rendered.contains('a') && rendered.contains('b'));
    }
}
