//! Sample collection and descriptive statistics (percentiles, mean, σ).

/// A collector of scalar samples (latencies in seconds, sizes in bytes, …)
/// supporting exact order statistics.
///
/// Percentiles are computed exactly by sorting a copy on demand; at the
/// scale of these experiments (≤ 10⁵ samples per cell) this is faster and
/// simpler than a sketch and has zero error.
///
/// # Examples
///
/// ```
/// use dataflower_metrics::Samples;
///
/// let mut s = Samples::new();
/// for v in [1.0, 2.0, 3.0, 4.0, 10.0] {
///     s.push(v);
/// }
/// assert_eq!(s.len(), 5);
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.percentile(0.50), 3.0);
/// assert_eq!(s.max(), 10.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN (a NaN sample poisons every statistic).
    pub fn push(&mut self, v: f64) {
        assert!(!v.is_nan(), "NaN sample");
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw samples in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Arithmetic mean; zero for an empty collector.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Population standard deviation; zero for fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64;
        var.sqrt()
    }

    /// Smallest sample; zero for an empty collector.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest sample; zero for an empty collector.
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Exact `q`-quantile using nearest-rank with linear interpolation.
    ///
    /// Returns zero for an empty collector.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= q <= 1`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// Convenience: median.
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// Convenience: 99th percentile (the paper's tail-latency metric).
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// Convenience: 99.9th percentile (the load harness's extreme-tail
    /// metric — at 10⁶ samples this is still the exact order statistic
    /// over the top thousand).
    pub fn p999(&self) -> f64 {
        self.percentile(0.999)
    }

    /// Empirical CDF as `(value, cumulative_fraction)` points, one per
    /// sample, suitable for plotting (Fig. 15).
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let n = sorted.len();
        sorted
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Merges another collector's samples into this one.
    pub fn merge(&mut self, other: &Samples) {
        self.values.extend_from_slice(&other.values);
    }

    /// A compact summary of the distribution.
    pub fn summary(&self) -> StatSummary {
        StatSummary {
            count: self.len(),
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min(),
            p50: self.p50(),
            p99: self.p99(),
            max: self.max(),
        }
    }
}

impl Extend<f64> for Samples {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Samples::new();
        s.extend(iter);
        s
    }
}

/// Point-in-time digest of a [`Samples`] distribution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatSummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl std::fmt::Display for StatSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} σ={:.4} min={:.4} p50={:.4} p99={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.p50, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let s = Samples::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(0.99), 0.0);
        assert!(s.cdf().is_empty());
    }

    #[test]
    fn percentile_interpolates() {
        let s: Samples = (1..=4).map(|v| v as f64).collect();
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(1.0), 4.0);
        assert_eq!(s.percentile(0.5), 2.5);
    }

    #[test]
    fn p99_close_to_max_for_uniform() {
        let s: Samples = (0..1000).map(|v| v as f64).collect();
        assert!((s.p99() - 989.01).abs() < 0.1, "p99={}", s.p99());
    }

    #[test]
    fn std_dev_known_value() {
        let s: Samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let s: Samples = [3.0, 1.0, 2.0].into_iter().collect();
        let cdf = s.cdf();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0], (1.0, 1.0 / 3.0));
        assert_eq!(cdf[2], (3.0, 1.0));
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        Samples::new().push(f64::NAN);
    }

    #[test]
    fn merge_combines() {
        let mut a: Samples = [1.0, 2.0].into_iter().collect();
        let b: Samples = [3.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn summary_display() {
        let s: Samples = [1.0, 2.0].into_iter().collect();
        let text = s.summary().to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=1.5"));
    }
}
