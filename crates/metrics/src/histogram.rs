//! Fixed-memory latency histograms and windowed quantile timelines.
//!
//! The load harness completes requests by the million; keeping every
//! sample alive per time window would make the measurement cost scale
//! with the load. [`Histogram`] is the constant-size alternative: a
//! log-bucketed counter array with ~4 % relative resolution, so a
//! million `record` calls cost a million increments and the p50/p99/p999
//! queries walk a few hundred buckets. [`QuantileTimeline`] stacks one
//! histogram per time window and flushes each closed window's quantiles
//! into a [`Timeline`] — the p99-over-time series of the loadgen
//! reports.

use crate::timeline::Timeline;

/// Smallest representable value (1 µs when recording seconds); anything
/// at or below lands in the underflow bucket.
const MIN_VALUE: f64 = 1e-6;
/// Largest representable value (10⁴ s); anything above saturates into
/// the last bucket.
const MAX_VALUE: f64 = 1e4;
/// Per-bucket geometric growth: ~4 % relative quantile error.
const GROWTH: f64 = 1.04;

/// A log-bucketed histogram of positive scalar samples (latencies in
/// seconds, sizes in bytes…): constant memory, ~4 % relative resolution
/// across `1e-6..=1e4`, exact count/sum.
///
/// # Examples
///
/// ```
/// use dataflower_metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for i in 1..=1000 {
///     h.record(i as f64 / 1000.0); // 1 ms .. 1 s
/// }
/// assert_eq!(h.count(), 1000);
/// let p99 = h.quantile(0.99);
/// assert!((p99 - 0.99).abs() / 0.99 < 0.05, "p99={p99}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Number of log buckets covering `MIN_VALUE..MAX_VALUE` at `GROWTH`.
fn bucket_count() -> usize {
    ((MAX_VALUE / MIN_VALUE).ln() / GROWTH.ln()).ceil() as usize + 1
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; bucket_count()],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index of `v` (clamped into range).
    fn index(v: f64) -> usize {
        if v <= MIN_VALUE {
            return 0;
        }
        let i = ((v / MIN_VALUE).ln() / GROWTH.ln()).floor() as usize;
        i.min(bucket_count() - 1)
    }

    /// Lower bound of bucket `i`.
    fn lower_bound(i: usize) -> f64 {
        MIN_VALUE * GROWTH.powi(i as i32)
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative samples — both would poison the
    /// quantiles silently.
    pub fn record(&mut self, v: f64) {
        assert!(!v.is_nan(), "NaN sample");
        assert!(v >= 0.0, "negative sample: {v}");
        self.buckets[Self::index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact arithmetic mean (the sum is tracked outside the buckets);
    /// zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact smallest recorded sample; zero when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample; zero when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile to the histogram's ~4 % bucket resolution
    /// (geometric midpoint of the bucket holding the rank, clamped to
    /// the exact observed min/max). Zero when empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= q <= 1`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0.0;
        }
        // The extremes are tracked exactly outside the buckets.
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        // Nearest-rank over the cumulative bucket counts.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = Self::lower_bound(i) * GROWTH.sqrt();
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience: median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Convenience: 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Convenience: 99.9th percentile.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Adds `other`'s samples into this histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Windowed quantile recorder: samples land in a per-window
/// [`Histogram`], and every closed window flushes its quantiles (and a
/// completion rate) into a [`Timeline`] — one step series per quantile.
///
/// Samples must arrive in non-decreasing time order per window (later
/// windows may not reopen earlier ones); the loadgen driver records
/// completions with a monotonic clock, which satisfies this naturally.
///
/// # Examples
///
/// ```
/// use dataflower_metrics::QuantileTimeline;
///
/// let mut qt = QuantileTimeline::new(1.0); // 1 s windows
/// qt.record(0.2, 0.010);
/// qt.record(0.9, 0.030);
/// qt.record(1.5, 0.200); // rolls the first window over
/// let t = qt.finish(2.0);
/// let p99 = t.value_at("p99", 0.5);
/// assert!((p99 - 0.030).abs() / 0.030 < 0.05); // ~4 % bucket resolution
/// assert_eq!(t.value_at("rate", 0.5), 2.0); // 2 completions in 1 s
/// assert!((t.value_at("p50", 1.5) - 0.200).abs() / 0.200 < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct QuantileTimeline {
    window_secs: f64,
    window_start: f64,
    window: Histogram,
    timeline: Timeline,
}

/// The quantile series every flushed window records.
const QUANTILES: [(&str, f64); 3] = [("p50", 0.50), ("p99", 0.99), ("p999", 0.999)];

impl QuantileTimeline {
    /// A recorder with `window_secs`-wide windows starting at t = 0.
    ///
    /// # Panics
    ///
    /// Panics unless `window_secs` is positive and finite.
    pub fn new(window_secs: f64) -> QuantileTimeline {
        assert!(
            window_secs.is_finite() && window_secs > 0.0,
            "window must be positive"
        );
        QuantileTimeline {
            window_secs,
            window_start: 0.0,
            window: Histogram::new(),
            timeline: Timeline::new(),
        }
    }

    /// Records one sample (`value`, e.g. a latency in seconds) observed
    /// at `at_secs` since the run started. Closes and flushes any
    /// windows that ended before `at_secs` first. Samples before the
    /// current window are clamped into it.
    pub fn record(&mut self, at_secs: f64, value: f64) {
        while at_secs >= self.window_start + self.window_secs {
            self.flush_window();
        }
        self.window.record(value);
    }

    /// Flushes the current window into the timeline and opens the next.
    fn flush_window(&mut self) {
        if !self.window.is_empty() {
            for (key, q) in QUANTILES {
                self.timeline
                    .record(key, self.window_start, self.window.quantile(q));
            }
            self.timeline.record(
                "rate",
                self.window_start,
                self.window.count() as f64 / self.window_secs,
            );
        }
        self.window_start += self.window_secs;
        self.window = Histogram::new();
    }

    /// Closes every window up to `end_secs` and returns the quantile
    /// timeline (`p50`/`p99`/`p999` series in the sample's unit, `rate`
    /// in samples/s).
    pub fn finish(mut self, end_secs: f64) -> Timeline {
        while self.window_start < end_secs || !self.window.is_empty() {
            self.flush_window();
        }
        self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn quantiles_are_within_bucket_resolution() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i as f64 * 1e-4); // 0.1 ms .. 1 s uniform
        }
        for (q, exact) in [(0.5, 0.5), (0.99, 0.99), (0.999, 0.999)] {
            let got = h.quantile(q);
            assert!(
                (got - exact).abs() / exact < 0.05,
                "q={q}: got {got}, exact {exact}"
            );
        }
        assert_eq!(h.count(), 10_000);
        assert!((h.mean() - 0.50005).abs() < 1e-9);
        assert_eq!(h.min(), 1e-4);
        assert_eq!(h.max(), 1.0);
    }

    #[test]
    fn out_of_range_samples_clamp_into_end_buckets() {
        let mut h = Histogram::new();
        h.record(0.0); // underflow bucket
        h.record(1e9); // saturates
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0), 0.0); // clamped to exact min
        assert_eq!(h.quantile(1.0), 1e9); // clamped to exact max
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        a.record(0.001);
        let mut b = Histogram::new();
        b.record(0.1);
        b.record(0.2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 0.001);
        assert_eq!(a.max(), 0.2);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn histogram_rejects_nan() {
        Histogram::new().record(f64::NAN);
    }

    /// Asserts `got` is within the histogram's bucket resolution of `want`.
    fn close(got: f64, want: f64) {
        assert!((got - want).abs() / want < 0.05, "got {got}, want ~{want}");
    }

    #[test]
    fn quantile_timeline_flushes_windows_in_order() {
        let mut qt = QuantileTimeline::new(0.5);
        qt.record(0.1, 0.010);
        qt.record(0.2, 0.020);
        qt.record(0.7, 0.100);
        // A gap: windows [1.0,1.5) and [1.5,2.0) stay empty.
        qt.record(2.1, 0.050);
        let t = qt.finish(2.5);
        close(t.value_at("p99", 0.1), 0.020);
        assert_eq!(t.value_at("rate", 0.1), 4.0);
        close(t.value_at("p50", 0.7), 0.100);
        // Empty windows record nothing: the step holds the last value.
        close(t.value_at("p50", 1.2), 0.100);
        close(t.value_at("p50", 2.2), 0.050);
    }

    #[test]
    fn quantile_timeline_finish_flushes_trailing_window() {
        let mut qt = QuantileTimeline::new(1.0);
        qt.record(0.5, 1.0);
        let t = qt.finish(0.75); // end before the window closes
        close(t.value_at("p50", 0.5), 1.0);
    }
}
