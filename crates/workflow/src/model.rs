//! Cost models attached to workflow functions and data edges.
//!
//! The evaluation never depends on *what* a function computes — only on
//! how long it computes and how many bytes it emits. These models carry
//! exactly that information, so one workflow definition serves both the
//! simulated engines and (ignored there) the live runtime.

/// One kibibyte in bytes.
pub const KB: f64 = 1024.0;
/// One mebibyte in bytes.
pub const MB: f64 = 1024.0 * 1024.0;

/// CPU demand of a function as a function of its total input size.
///
/// `work = base_core_secs + per_mb_core_secs × input_MB`, in core-seconds.
/// A container holding `c` cores executes it in `work / c` seconds.
///
/// # Examples
///
/// ```
/// use dataflower_workflow::{WorkModel, MB};
///
/// let m = WorkModel::new(0.05, 0.02);
/// assert_eq!(m.core_secs(10.0 * MB), 0.05 + 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkModel {
    /// Fixed cost per invocation, core-seconds.
    pub base_core_secs: f64,
    /// Marginal cost per MiB of input, core-seconds.
    pub per_mb_core_secs: f64,
}

impl WorkModel {
    /// Creates a work model.
    ///
    /// # Panics
    ///
    /// Panics if either coefficient is negative or not finite.
    pub fn new(base_core_secs: f64, per_mb_core_secs: f64) -> Self {
        assert!(
            base_core_secs.is_finite() && base_core_secs >= 0.0,
            "base cost must be non-negative"
        );
        assert!(
            per_mb_core_secs.is_finite() && per_mb_core_secs >= 0.0,
            "per-MB cost must be non-negative"
        );
        WorkModel {
            base_core_secs,
            per_mb_core_secs,
        }
    }

    /// A model with only a fixed cost.
    pub fn fixed(base_core_secs: f64) -> Self {
        WorkModel::new(base_core_secs, 0.0)
    }

    /// Core-seconds needed for `input_bytes` of input.
    pub fn core_secs(&self, input_bytes: f64) -> f64 {
        self.base_core_secs + self.per_mb_core_secs * (input_bytes / MB)
    }
}

impl Default for WorkModel {
    fn default() -> Self {
        WorkModel::fixed(0.01)
    }
}

/// Size of the data carried by an edge, as a function of the producing
/// function's total input size.
///
/// # Examples
///
/// ```
/// use dataflower_workflow::{SizeModel, MB};
///
/// assert_eq!(SizeModel::Fixed(100.0).bytes(1e9), 100.0);
/// assert_eq!(SizeModel::ScaleOfInput(0.25).bytes(4.0 * MB), MB);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeModel {
    /// A constant number of bytes regardless of input.
    Fixed(f64),
    /// A multiple of the producer's total input bytes.
    ScaleOfInput(f64),
    /// `Fixed + ScaleOfInput` combined: `bytes = fixed + factor × input`.
    Affine {
        /// Constant component in bytes.
        fixed: f64,
        /// Input-proportional component.
        factor: f64,
    },
}

impl SizeModel {
    /// Bytes emitted on this edge when the producer consumed
    /// `producer_input_bytes`.
    pub fn bytes(&self, producer_input_bytes: f64) -> f64 {
        let v = match *self {
            SizeModel::Fixed(b) => b,
            SizeModel::ScaleOfInput(f) => f * producer_input_bytes,
            SizeModel::Affine { fixed, factor } => fixed + factor * producer_input_bytes,
        };
        v.max(0.0)
    }

    /// Validates the model's coefficients.
    pub(crate) fn validate(&self) -> Result<(), String> {
        let ok = match *self {
            SizeModel::Fixed(b) => b.is_finite() && b >= 0.0,
            SizeModel::ScaleOfInput(f) => f.is_finite() && f >= 0.0,
            SizeModel::Affine { fixed, factor } => {
                fixed.is_finite() && fixed >= 0.0 && factor.is_finite() && factor >= 0.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(format!("invalid size model {self:?}"))
        }
    }
}

impl Default for SizeModel {
    fn default() -> Self {
        SizeModel::ScaleOfInput(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_model_math() {
        let m = WorkModel::new(1.0, 2.0);
        assert_eq!(m.core_secs(0.0), 1.0);
        assert_eq!(m.core_secs(MB), 3.0);
        assert_eq!(WorkModel::fixed(0.5).core_secs(100.0 * MB), 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn work_model_rejects_negative() {
        WorkModel::new(-1.0, 0.0);
    }

    #[test]
    fn size_model_variants() {
        assert_eq!(SizeModel::Fixed(5.0).bytes(100.0), 5.0);
        assert_eq!(SizeModel::ScaleOfInput(0.5).bytes(100.0), 50.0);
        assert_eq!(
            SizeModel::Affine {
                fixed: 10.0,
                factor: 0.1
            }
            .bytes(100.0),
            20.0
        );
    }

    #[test]
    fn size_model_never_negative() {
        assert_eq!(SizeModel::ScaleOfInput(0.5).bytes(-10.0), 0.0);
    }

    #[test]
    fn validation() {
        assert!(SizeModel::Fixed(1.0).validate().is_ok());
        assert!(SizeModel::Fixed(-1.0).validate().is_err());
        assert!(SizeModel::ScaleOfInput(f64::NAN).validate().is_err());
    }
}
