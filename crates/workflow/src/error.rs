//! Workflow validation errors.

use std::fmt;

/// Error produced when building or parsing a workflow definition.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkflowError {
    /// The workflow has no functions.
    Empty,
    /// A function name appears twice.
    DuplicateFunction(String),
    /// A function or endpoint name is empty or malformed.
    BadName(String),
    /// The data dependency graph contains a cycle through the named function.
    Cycle(String),
    /// No edge originates at the client, so nothing can ever trigger.
    NoClientInput,
    /// The named function cannot be reached from any client input.
    Unreachable(String),
    /// The named function has no input edges (it could never trigger).
    NoInputs(String),
    /// The named function has no output edges; the paper requires the DLU
    /// be called at least once per FLU, with an `end` signal for terminals.
    NoOutputs(String),
    /// A size model has invalid coefficients.
    BadSizeModel(String),
    /// Edges of one switch group originate at different functions.
    MixedSwitchGroup(u32),
    /// A referenced function does not exist (spec parsing).
    UnknownFunction(String),
    /// The serialized spec was structurally invalid.
    BadSpec(String),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::Empty => write!(f, "workflow has no functions"),
            WorkflowError::DuplicateFunction(n) => write!(f, "duplicate function name `{n}`"),
            WorkflowError::BadName(n) => write!(f, "invalid name `{n}`"),
            WorkflowError::Cycle(n) => write!(f, "data dependency cycle through `{n}`"),
            WorkflowError::NoClientInput => write!(f, "no client input edge"),
            WorkflowError::Unreachable(n) => {
                write!(f, "function `{n}` unreachable from client input")
            }
            WorkflowError::NoInputs(n) => write!(f, "function `{n}` has no input edges"),
            WorkflowError::NoOutputs(n) => write!(f, "function `{n}` has no output edges"),
            WorkflowError::BadSizeModel(m) => write!(f, "{m}"),
            WorkflowError::MixedSwitchGroup(g) => {
                write!(
                    f,
                    "switch group {g} mixes edges from different source functions"
                )
            }
            WorkflowError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            WorkflowError::BadSpec(m) => write!(f, "invalid workflow spec: {m}"),
        }
    }
}

impl std::error::Error for WorkflowError {}
