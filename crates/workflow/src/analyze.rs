//! Workflow analysis utilities: Graphviz export and critical-path
//! estimation.

use crate::graph::{Endpoint, Workflow};

impl Workflow {
    /// Renders the data-flow graph in Graphviz DOT format (client
    /// endpoints shown as a `$USER` node, switch edges dashed).
    ///
    /// # Examples
    ///
    /// ```
    /// use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder};
    ///
    /// let mut b = WorkflowBuilder::new("tiny");
    /// let f = b.function("f", WorkModel::fixed(0.1));
    /// b.client_input(f, "in", SizeModel::Fixed(1.0));
    /// b.client_output(f, "out", SizeModel::Fixed(1.0));
    /// let dot = b.build()?.to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("\"f\""));
    /// # Ok::<(), dataflower_workflow::WorkflowError>(())
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name());
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  \"$USER\" [shape=doublecircle];");
        for f in self.function_ids() {
            let _ = writeln!(out, "  \"{}\" [shape=box];", self.function(f).name);
        }
        for e in self.edges() {
            let src = match e.source {
                Endpoint::Client => "$USER".to_owned(),
                Endpoint::Function(s) => self.function(s).name.clone(),
            };
            let dst = match e.target {
                Endpoint::Client => "$USER".to_owned(),
                Endpoint::Function(t) => self.function(t).name.clone(),
            };
            let style = if e.switch.is_some() {
                ", style=dashed"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  \"{src}\" -> \"{dst}\" [label=\"{}\"{style}];",
                e.data_name
            );
        }
        out.push_str("}\n");
        out
    }

    /// Estimates the critical-path compute time in core-seconds for a
    /// request with `payload_bytes` of input: the longest chain of
    /// function work along data edges (transfer times excluded — this is
    /// the lower bound a perfect data plane could reach, useful for
    /// judging how close an engine gets).
    pub fn critical_path_core_secs(&self, payload_bytes: f64) -> f64 {
        let n = self.function_count();
        let mut input_bytes = vec![0.0f64; n];
        for e in self.edges() {
            if let (Endpoint::Client, Endpoint::Function(t)) = (e.source, e.target) {
                input_bytes[t.index()] += e.size.bytes(payload_bytes);
            }
        }
        // Propagate sizes, then the longest work chain, in topo order.
        let mut chain = vec![0.0f64; n];
        let mut best: f64 = 0.0;
        for f in self.topo_order().to_vec() {
            // Inputs from predecessors were accumulated already (topo order).
            let work = self.function(f).work.core_secs(input_bytes[f.index()]);
            let longest_pred = self
                .predecessors(f)
                .iter()
                .map(|p| chain[p.index()])
                .fold(0.0, f64::max);
            chain[f.index()] = longest_pred + work;
            best = best.max(chain[f.index()]);
            for eid in self.outputs(f) {
                let e = self.edge(*eid);
                if let Endpoint::Function(t) = e.target {
                    input_bytes[t.index()] += e.size.bytes(input_bytes[f.index()]);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::WorkflowBuilder;
    use crate::model::{SizeModel, WorkModel, MB};

    #[test]
    fn dot_mentions_every_function_and_edge_label() {
        let mut b = WorkflowBuilder::new("dotted");
        let a = b.function("alpha", WorkModel::fixed(0.1));
        let z = b.function("omega", WorkModel::fixed(0.1));
        b.client_input(a, "seed", SizeModel::Fixed(1.0));
        b.switch_edge(a, z, "maybe", SizeModel::Fixed(1.0), 0, 0);
        b.client_output(a, "alt", SizeModel::Fixed(1.0));
        b.client_output(z, "end", SizeModel::Fixed(1.0));
        let dot = b.build().unwrap().to_dot();
        for needle in ["alpha", "omega", "seed", "maybe", "style=dashed", "$USER"] {
            assert!(dot.contains(needle), "missing {needle} in:\n{dot}");
        }
    }

    #[test]
    fn critical_path_is_longest_chain() {
        // Diamond: a → {fast, slow} → z; the slow branch dominates.
        let mut b = WorkflowBuilder::new("diamond");
        let a = b.function("a", WorkModel::fixed(1.0));
        let fast = b.function("fast", WorkModel::fixed(0.1));
        let slow = b.function("slow", WorkModel::fixed(5.0));
        let z = b.function("z", WorkModel::fixed(1.0));
        b.client_input(a, "in", SizeModel::Fixed(MB));
        b.edge(a, fast, "f", SizeModel::Fixed(1.0));
        b.edge(a, slow, "s", SizeModel::Fixed(1.0));
        b.edge(fast, z, "fz", SizeModel::Fixed(1.0));
        b.edge(slow, z, "sz", SizeModel::Fixed(1.0));
        b.client_output(z, "out", SizeModel::Fixed(1.0));
        let wf = b.build().unwrap();
        let cp = wf.critical_path_core_secs(MB);
        assert!((cp - 7.0).abs() < 1e-9, "cp={cp}");
    }

    #[test]
    fn critical_path_scales_with_payload() {
        let mut b = WorkflowBuilder::new("scaling");
        let f = b.function("f", WorkModel::new(0.0, 1.0)); // 1 core-s per MB
        b.client_input(f, "in", SizeModel::ScaleOfInput(1.0));
        b.client_output(f, "out", SizeModel::Fixed(1.0));
        let wf = b.build().unwrap();
        assert!((wf.critical_path_core_secs(2.0 * MB) - 2.0).abs() < 1e-9);
    }
}
