//! Incremental construction of [`Workflow`]s.

use crate::error::WorkflowError;
use crate::graph::{DataEdge, Endpoint, FnId, FunctionDef, SwitchCase, Workflow};
use crate::model::{SizeModel, WorkModel};

/// Builder for [`Workflow`]s.
///
/// Declare functions first, then wire data edges between them (plus at
/// least one client input and typically client outputs), then call
/// [`WorkflowBuilder::build`] to validate.
///
/// # Examples
///
/// A `foreach`-style fan-out like the paper's WordCount (Fig. 7):
///
/// ```
/// use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder, MB};
///
/// let fan_out = 4;
/// let mut b = WorkflowBuilder::new("wordcount");
/// let start = b.function("start", WorkModel::fixed(0.01));
/// let merge = b.function("merge", WorkModel::fixed(0.02));
/// b.client_input(start, "text", SizeModel::Fixed(4.0 * MB));
/// for i in 0..fan_out {
///     let count = b.function(format!("count_{i}"), WorkModel::new(0.0, 0.04));
///     // Each branch gets 1/fan_out of the input...
///     b.edge(start, count, "file", SizeModel::ScaleOfInput(1.0 / fan_out as f64));
///     // ...and emits a count table an order of magnitude smaller.
///     b.edge(count, merge, "counts", SizeModel::ScaleOfInput(0.1));
/// }
/// b.client_output(merge, "result", SizeModel::Fixed(4096.0));
/// let wf = b.build()?;
/// assert_eq!(wf.function_count(), 2 + fan_out);
/// # Ok::<(), dataflower_workflow::WorkflowError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WorkflowBuilder {
    name: String,
    functions: Vec<FunctionDef>,
    edges: Vec<DataEdge>,
}

impl WorkflowBuilder {
    /// Starts a workflow named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        WorkflowBuilder {
            name: name.into(),
            functions: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Declares a function and returns its id.
    pub fn function(&mut self, name: impl Into<String>, work: WorkModel) -> FnId {
        let id = FnId::from_u32(self.functions.len() as u32);
        self.functions.push(FunctionDef {
            name: name.into(),
            work,
        });
        id
    }

    /// Adds a function→function data edge.
    pub fn edge(
        &mut self,
        source: FnId,
        target: FnId,
        data_name: impl Into<String>,
        size: SizeModel,
    ) -> &mut Self {
        self.edges.push(DataEdge {
            source: Endpoint::Function(source),
            target: Endpoint::Function(target),
            data_name: data_name.into(),
            size,
            switch: None,
        });
        self
    }

    /// Adds a switch alternative: the edge only carries data when `case`
    /// is chosen for `group` at runtime.
    pub fn switch_edge(
        &mut self,
        source: FnId,
        target: FnId,
        data_name: impl Into<String>,
        size: SizeModel,
        group: u32,
        case: u32,
    ) -> &mut Self {
        self.edges.push(DataEdge {
            source: Endpoint::Function(source),
            target: Endpoint::Function(target),
            data_name: data_name.into(),
            size,
            switch: Some(SwitchCase { group, case }),
        });
        self
    }

    /// Adds a client→function input edge (the `$USER.input` of Fig. 7).
    /// For client inputs the [`SizeModel`] is evaluated with the request's
    /// payload size as "producer input".
    pub fn client_input(
        &mut self,
        target: FnId,
        data_name: impl Into<String>,
        size: SizeModel,
    ) -> &mut Self {
        self.edges.push(DataEdge {
            source: Endpoint::Client,
            target: Endpoint::Function(target),
            data_name: data_name.into(),
            size,
            switch: None,
        });
        self
    }

    /// Adds a function→client result edge (the `destination: $USER` of
    /// Fig. 7, doubling as the terminal `end` signal the paper requires).
    pub fn client_output(
        &mut self,
        source: FnId,
        data_name: impl Into<String>,
        size: SizeModel,
    ) -> &mut Self {
        self.edges.push(DataEdge {
            source: Endpoint::Function(source),
            target: Endpoint::Client,
            data_name: data_name.into(),
            size,
            switch: None,
        });
        self
    }

    /// Validates and produces the workflow.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkflowError`] describing the first structural problem
    /// found (cycle, unreachable function, missing inputs/outputs, …).
    pub fn build(&self) -> Result<Workflow, WorkflowError> {
        Workflow::validate_and_build(
            self.name.clone(),
            self.functions.clone(),
            self.edges.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_is_chainable() {
        let mut b = WorkflowBuilder::new("chain");
        let a = b.function("a", WorkModel::fixed(0.1));
        let c = b.function("c", WorkModel::fixed(0.1));
        b.client_input(a, "in", SizeModel::Fixed(1.0))
            .edge(a, c, "ac", SizeModel::Fixed(2.0))
            .client_output(c, "out", SizeModel::Fixed(1.0));
        let wf = b.build().unwrap();
        assert_eq!(wf.name(), "chain");
        assert_eq!(wf.edges().len(), 3);
    }

    #[test]
    fn build_is_repeatable() {
        let mut b = WorkflowBuilder::new("twice");
        let a = b.function("a", WorkModel::fixed(0.1));
        b.client_input(a, "in", SizeModel::Fixed(1.0));
        b.client_output(a, "out", SizeModel::Fixed(1.0));
        let w1 = b.build().unwrap();
        let w2 = b.build().unwrap();
        assert_eq!(w1, w2);
    }
}
