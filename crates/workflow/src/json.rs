//! A minimal, dependency-free JSON value type with a parser and pretty
//! printer — just enough for [`WorkflowSpec`](crate::WorkflowSpec)
//! round-trips under the workspace's offline, std-only build policy.
//!
//! Numbers are `f64` and objects preserve insertion order, which keeps
//! spec serialization deterministic.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline-free
    /// layout, like typical pretty printers.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    debug_assert!(n.is_finite(), "JSON numbers must be finite, got {n}");
    // Rust's shortest-round-trip formatting; parses back to the same bits.
    let _ = write!(out, "{n}");
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. The recursive-descent
/// parser uses one stack frame per level; bounding the depth turns a
/// hostile `[[[[…` document into an `Err` instead of a stack overflow.
const MAX_DEPTH: usize = 128;

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable message (with byte offset) on malformed
/// input, trailing garbage, or nesting deeper than 128 levels.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Value, String> {
        self.enter()?;
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not needed for spec names;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the whole unescaped run in one O(len) slice.
                    // `input` is valid UTF-8 and both endpoints sit on
                    // ASCII bytes (`"` / `\`) or the string end, so the
                    // slice boundaries are char boundaries.
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.input[start..self.pos]);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for (text, v) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("1.5", Value::Num(1.5)),
            ("-3", Value::Num(-3.0)),
            ("\"hi\"", Value::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), v);
        }
    }

    #[test]
    fn nested_roundtrip() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("wf \"x\"\n".into())),
            (
                "sizes".into(),
                Value::Arr(vec![Value::Num(1.0), Value::Num(2.5e-3)]),
            ),
            ("empty".into(), Value::Obj(vec![])),
            ("none".into(), Value::Null),
        ]);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn number_precision_survives() {
        let n = 0.1 + 0.2; // not representable exactly; shortest form must round-trip
        let v = Value::Num(n);
        match parse(&v.pretty()).unwrap() {
            Value::Num(back) => assert_eq!(back.to_bits(), n.to_bits()),
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn malformed_rejected() {
        for bad in [
            "{not json",
            "[1,",
            "\"open",
            "{\"a\":}",
            "12..5",
            "true false",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn hostile_nesting_rejected_not_overflowed() {
        let bomb = "[".repeat(100_000);
        let err = parse(&bomb).unwrap_err();
        assert!(err.contains("nesting"), "unexpected error: {err}");
    }

    #[test]
    fn long_string_content_preserved() {
        let body = "x".repeat(100_000);
        let doc = format!("\"{body}\"");
        assert_eq!(parse(&doc).unwrap(), Value::Str(body));
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" {\n\t\"a\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_arr).unwrap().len(), 2);
    }
}
