//! # dataflower-workflow
//!
//! The workflow definition language of the DataFlower reproduction.
//!
//! A serverless workflow is a DAG of functions connected by **data
//! edges** — exactly the representation the paper's Fig. 7 spec declares.
//! From this single definition both execution paradigms are derived:
//!
//! * the **control-flow** view ([`Workflow::predecessors`],
//!   [`Workflow::levels`]): trigger a function when its predecessors
//!   complete, in topological order;
//! * the **data-flow** view ([`Workflow::inputs`], [`Workflow::outputs`]):
//!   trigger a function when all of its input *data* is available, and
//!   tell its DLU where each output must flow.
//!
//! Workflows are built programmatically with [`WorkflowBuilder`] or parsed
//! from a JSON [`WorkflowSpec`]. Every workflow is validated (acyclic,
//! reachable, no dangling I/O) before it can execute.
//!
//! # Examples
//!
//! ```
//! use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder, MB};
//!
//! let mut b = WorkflowBuilder::new("pipeline");
//! let extract = b.function("extract", WorkModel::new(0.02, 0.01));
//! let transform = b.function("transform", WorkModel::new(0.05, 0.03));
//! b.client_input(extract, "raw", SizeModel::Fixed(MB));
//! b.edge(extract, transform, "rows", SizeModel::ScaleOfInput(0.8));
//! b.client_output(transform, "report", SizeModel::Fixed(2048.0));
//! let wf = b.build()?;
//!
//! assert_eq!(wf.topo_order().len(), 2);
//! assert_eq!(wf.entry_functions(), vec![extract]);
//! # Ok::<(), dataflower_workflow::WorkflowError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod builder;
mod error;
mod graph;
pub mod json;
mod model;
pub mod spec;

pub use builder::WorkflowBuilder;
pub use error::WorkflowError;
pub use graph::{ActiveGraph, DataEdge, EdgeId, Endpoint, FnId, FunctionDef, SwitchCase, Workflow};
pub use model::{SizeModel, WorkModel, KB, MB};
pub use spec::WorkflowSpec;
