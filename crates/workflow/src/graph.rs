//! The workflow graph: functions, data edges and the derived views the
//! engines need (control-flow predecessors, data-flow destinations,
//! topological structure, switch resolution).

use std::collections::HashMap;
use std::fmt;

use crate::error::WorkflowError;
use crate::model::{SizeModel, WorkModel};

/// Index of a function within its [`Workflow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FnId(u32);

impl FnId {
    /// Position of the function in its [`Workflow`]'s function table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a raw index. Ids are only meaningful relative to
    /// the workflow they were minted for; constructing them manually is
    /// intended for engines that need ordered lookup keys or range bounds.
    pub const fn from_index(i: usize) -> FnId {
        FnId(i as u32)
    }

    pub(crate) const fn from_u32(v: u32) -> FnId {
        FnId(v)
    }
}

impl fmt::Display for FnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Index of a data edge within its [`Workflow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Position of the edge in [`Workflow::edges`].
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a raw index (see [`FnId::from_index`] for the
    /// intended uses and caveats).
    pub const fn from_index(i: usize) -> EdgeId {
        EdgeId(i as u32)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "edge#{}", self.0)
    }
}

/// One end of a data edge: the invoking client (`$USER` in the paper's
/// Fig. 7 spec) or a workflow function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The workflow invoker: source of the initial input, sink of results.
    Client,
    /// A function in the same workflow.
    Function(FnId),
}

/// Switch routing attribute: edges sharing a `group` are alternatives of
/// one `switch`; exactly one `case` per group is taken per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchCase {
    /// Which switch this edge belongs to (scoped to the source function).
    pub group: u32,
    /// Which alternative this edge is.
    pub case: u32,
}

/// A declared data dependency: `source` produces `data_name`, which flows
/// to `target`. The data-flow paradigm's graph is exactly this edge set;
/// the control-flow paradigm derives "trigger when predecessors complete"
/// from the same edges.
#[derive(Debug, Clone, PartialEq)]
pub struct DataEdge {
    /// Producer of the data.
    pub source: Endpoint,
    /// Consumer of the data.
    pub target: Endpoint,
    /// Logical name (the `DataName` level of the Wait-Match index).
    pub data_name: String,
    /// How many bytes the edge carries given the producer's input size.
    pub size: SizeModel,
    /// Switch routing, if this edge is one alternative of a switch.
    pub switch: Option<SwitchCase>,
}

/// A function declaration: its name and CPU cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Unique (within the workflow) function name.
    pub name: String,
    /// CPU demand model.
    pub work: WorkModel,
}

/// A validated serverless workflow: a DAG of functions and data edges.
///
/// Construct one with [`WorkflowBuilder`](crate::WorkflowBuilder) or parse
/// a [`WorkflowSpec`](crate::WorkflowSpec). All derived indexes
/// (input/output adjacency, topological order) are precomputed, so lookups
/// during simulation are O(1).
///
/// # Examples
///
/// ```
/// use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder, MB};
///
/// let mut b = WorkflowBuilder::new("wordcount");
/// let start = b.function("start", WorkModel::fixed(0.01));
/// let count = b.function("count", WorkModel::new(0.0, 0.05));
/// let merge = b.function("merge", WorkModel::fixed(0.02));
/// b.client_input(start, "text", SizeModel::Fixed(4.0 * MB));
/// b.edge(start, count, "file", SizeModel::ScaleOfInput(1.0));
/// b.edge(count, merge, "counts", SizeModel::ScaleOfInput(0.1));
/// b.client_output(merge, "result", SizeModel::Fixed(1024.0));
/// let wf = b.build()?;
///
/// assert_eq!(wf.function_count(), 3);
/// assert_eq!(wf.predecessors(count), vec![start]);
/// assert_eq!(wf.topo_order().len(), 3);
/// # Ok::<(), dataflower_workflow::WorkflowError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Workflow {
    name: String,
    functions: Vec<FunctionDef>,
    edges: Vec<DataEdge>,
    inputs_of: Vec<Vec<EdgeId>>,
    outputs_of: Vec<Vec<EdgeId>>,
    topo: Vec<FnId>,
}

impl Workflow {
    pub(crate) fn validate_and_build(
        name: String,
        functions: Vec<FunctionDef>,
        edges: Vec<DataEdge>,
    ) -> Result<Workflow, WorkflowError> {
        if functions.is_empty() {
            return Err(WorkflowError::Empty);
        }
        if name.trim().is_empty() {
            return Err(WorkflowError::BadName(name));
        }
        let mut seen = HashMap::new();
        for (i, f) in functions.iter().enumerate() {
            if f.name.trim().is_empty() {
                return Err(WorkflowError::BadName(f.name.clone()));
            }
            if seen.insert(f.name.clone(), i).is_some() {
                return Err(WorkflowError::DuplicateFunction(f.name.clone()));
            }
        }
        for e in &edges {
            e.size.validate().map_err(WorkflowError::BadSizeModel)?;
        }

        let n = functions.len();
        let mut inputs_of = vec![Vec::new(); n];
        let mut outputs_of = vec![Vec::new(); n];
        let mut has_client_input = false;
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            match e.target {
                Endpoint::Function(t) => inputs_of[t.index()].push(id),
                Endpoint::Client => {}
            }
            match e.source {
                Endpoint::Function(s) => outputs_of[s.index()].push(id),
                Endpoint::Client => has_client_input = true,
            }
        }
        if !has_client_input {
            return Err(WorkflowError::NoClientInput);
        }
        for (i, f) in functions.iter().enumerate() {
            if inputs_of[i].is_empty() {
                return Err(WorkflowError::NoInputs(f.name.clone()));
            }
            if outputs_of[i].is_empty() {
                return Err(WorkflowError::NoOutputs(f.name.clone()));
            }
        }

        // Switch-group coherence: one source function per group.
        let mut group_src: HashMap<u32, Endpoint> = HashMap::new();
        for e in &edges {
            if let Some(sc) = e.switch {
                match group_src.entry(sc.group) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(e.source);
                    }
                    std::collections::hash_map::Entry::Occupied(o) => {
                        if *o.get() != e.source {
                            return Err(WorkflowError::MixedSwitchGroup(sc.group));
                        }
                    }
                }
            }
        }

        // Kahn topological sort over function→function edges.
        let mut indeg = vec![0usize; n];
        for e in &edges {
            if let (Endpoint::Function(_), Endpoint::Function(t)) = (e.source, e.target) {
                indeg[t.index()] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|i| indeg[*i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            topo.push(FnId(u as u32));
            for eid in &outputs_of[u] {
                if let Endpoint::Function(t) = edges[eid.index()].target {
                    indeg[t.index()] -= 1;
                    if indeg[t.index()] == 0 {
                        queue.push(t.index());
                    }
                }
            }
        }
        if topo.len() != n {
            let stuck = (0..n)
                .find(|i| indeg[*i] > 0)
                .map(|i| functions[i].name.clone())
                .unwrap_or_default();
            return Err(WorkflowError::Cycle(stuck));
        }

        // Reachability from client inputs.
        let mut reachable = vec![false; n];
        let mut stack: Vec<usize> = edges
            .iter()
            .filter(|e| e.source == Endpoint::Client)
            .filter_map(|e| match e.target {
                Endpoint::Function(t) => Some(t.index()),
                Endpoint::Client => None,
            })
            .collect();
        while let Some(u) = stack.pop() {
            if reachable[u] {
                continue;
            }
            reachable[u] = true;
            for eid in &outputs_of[u] {
                if let Endpoint::Function(t) = edges[eid.index()].target {
                    stack.push(t.index());
                }
            }
        }
        if let Some(i) = (0..n).find(|i| !reachable[*i]) {
            return Err(WorkflowError::Unreachable(functions[i].name.clone()));
        }

        Ok(Workflow {
            name,
            functions,
            edges,
            inputs_of,
            outputs_of,
            topo,
        })
    }

    /// The workflow's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of functions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// All function ids in declaration order.
    pub fn function_ids(&self) -> impl Iterator<Item = FnId> + '_ {
        (0..self.functions.len() as u32).map(FnId)
    }

    /// The definition of `f`.
    pub fn function(&self, f: FnId) -> &FunctionDef {
        &self.functions[f.index()]
    }

    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<FnId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FnId(i as u32))
    }

    /// All data edges in declaration order.
    pub fn edges(&self) -> &[DataEdge] {
        &self.edges
    }

    /// The edge with id `e`.
    pub fn edge(&self, e: EdgeId) -> &DataEdge {
        &self.edges[e.index()]
    }

    /// All edge ids in declaration order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Input edges of `f` (the data it must wait for).
    pub fn inputs(&self, f: FnId) -> &[EdgeId] {
        &self.inputs_of[f.index()]
    }

    /// Output edges of `f` (the destinations its DLU serves).
    pub fn outputs(&self, f: FnId) -> &[EdgeId] {
        &self.outputs_of[f.index()]
    }

    /// Edges that originate at the client (workflow inputs).
    pub fn client_inputs(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edge_ids()
            .filter(|e| self.edge(*e).source == Endpoint::Client)
    }

    /// Edges that terminate at the client (workflow results).
    pub fn client_outputs(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edge_ids()
            .filter(|e| self.edge(*e).target == Endpoint::Client)
    }

    /// Distinct upstream functions of `f` — the control-flow paradigm's
    /// trigger set ("run when all predecessors complete").
    pub fn predecessors(&self, f: FnId) -> Vec<FnId> {
        let mut out = Vec::new();
        for e in self.inputs(f) {
            if let Endpoint::Function(s) = self.edge(*e).source {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Distinct downstream functions of `f`.
    pub fn successors(&self, f: FnId) -> Vec<FnId> {
        let mut out = Vec::new();
        for e in self.outputs(f) {
            if let Endpoint::Function(t) = self.edge(*e).target {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        out
    }

    /// Functions with a direct client input.
    pub fn entry_functions(&self) -> Vec<FnId> {
        let mut out = Vec::new();
        for e in self.client_inputs() {
            if let Endpoint::Function(t) = self.edge(e).target {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
        out
    }

    /// Functions whose outputs all go to the client (workflow terminals).
    pub fn terminal_functions(&self) -> Vec<FnId> {
        self.function_ids()
            .filter(|f| self.successors(*f).is_empty())
            .collect()
    }

    /// A valid topological order of the functions.
    pub fn topo_order(&self) -> &[FnId] {
        &self.topo
    }

    /// Functions grouped into topological levels: level 0 = entries, level
    /// k = everything whose longest path from an entry has k hops. The
    /// sequential control-flow orchestrator triggers level by level.
    pub fn levels(&self) -> Vec<Vec<FnId>> {
        let n = self.functions.len();
        let mut level = vec![0usize; n];
        for f in &self.topo {
            for p in self.predecessors(*f) {
                level[f.index()] = level[f.index()].max(level[p.index()] + 1);
            }
        }
        let max = level.iter().copied().max().unwrap_or(0);
        let mut out = vec![Vec::new(); max + 1];
        for f in self.function_ids() {
            out[level[f.index()]].push(f);
        }
        out
    }

    /// Resolves switch groups for one request, returning per-edge
    /// activeness. `choose(group, n_cases)` must return a value `< n_cases`.
    ///
    /// A function is active iff **all** of its input edges are active; an
    /// edge is active iff its source is active (or the client) and it is
    /// either unconditional or the chosen case of its group.
    pub fn resolve_switches<C>(&self, mut choose: C) -> ActiveGraph
    where
        C: FnMut(u32, usize) -> usize,
    {
        // Count cases per group.
        let mut group_cases: HashMap<u32, Vec<u32>> = HashMap::new();
        for e in &self.edges {
            if let Some(sc) = e.switch {
                let cases = group_cases.entry(sc.group).or_default();
                if !cases.contains(&sc.case) {
                    cases.push(sc.case);
                }
            }
        }
        let mut chosen: HashMap<u32, u32> = HashMap::new();
        let mut groups: Vec<u32> = group_cases.keys().copied().collect();
        groups.sort_unstable();
        for g in groups {
            let mut cases = group_cases.remove(&g).expect("group listed");
            cases.sort_unstable();
            let pick = choose(g, cases.len());
            assert!(pick < cases.len(), "switch chooser out of range");
            chosen.insert(g, cases[pick]);
        }

        let mut fn_active = vec![true; self.functions.len()];
        let mut edge_active = vec![true; self.edges.len()];
        // Walk in topo order so upstream inactivity propagates.
        for f in &self.topo {
            let mut all_inputs = true;
            for eid in self.inputs(*f) {
                let e = self.edge(*eid);
                let mut active = match e.switch {
                    Some(sc) => chosen[&sc.group] == sc.case,
                    None => true,
                };
                if let Endpoint::Function(s) = e.source {
                    active &= fn_active[s.index()];
                }
                edge_active[eid.index()] = active;
                all_inputs &= active;
            }
            fn_active[f.index()] = all_inputs;
            if !all_inputs {
                for eid in self.outputs(*f) {
                    edge_active[eid.index()] = false;
                }
            }
        }
        // Output edges of active functions still obey their own switch.
        for f in &self.topo {
            if fn_active[f.index()] {
                for eid in self.outputs(*f) {
                    if let Some(sc) = self.edge(*eid).switch {
                        edge_active[eid.index()] = chosen[&sc.group] == sc.case;
                    }
                }
            }
        }
        ActiveGraph {
            fn_active,
            edge_active,
        }
    }

    /// Shorthand for workflows without switches: everything active.
    pub fn resolve_all_active(&self) -> ActiveGraph {
        self.resolve_switches(|_, _| 0)
    }
}

/// Per-request view of which functions and edges participate after switch
/// resolution (see [`Workflow::resolve_switches`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveGraph {
    fn_active: Vec<bool>,
    edge_active: Vec<bool>,
}

impl ActiveGraph {
    /// Whether function `f` runs in this request.
    pub fn function_active(&self, f: FnId) -> bool {
        self.fn_active[f.index()]
    }

    /// Whether edge `e` carries data in this request.
    pub fn edge_active(&self, e: EdgeId) -> bool {
        self.edge_active[e.index()]
    }

    /// Number of active functions.
    pub fn active_function_count(&self) -> usize {
        self.fn_active.iter().filter(|a| **a).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkflowBuilder;
    use crate::model::MB;

    fn diamond() -> Workflow {
        let mut b = WorkflowBuilder::new("diamond");
        let a = b.function("a", WorkModel::fixed(0.1));
        let x = b.function("x", WorkModel::fixed(0.1));
        let y = b.function("y", WorkModel::fixed(0.1));
        let z = b.function("z", WorkModel::fixed(0.1));
        b.client_input(a, "in", SizeModel::Fixed(MB));
        b.edge(a, x, "ax", SizeModel::ScaleOfInput(0.5));
        b.edge(a, y, "ay", SizeModel::ScaleOfInput(0.5));
        b.edge(x, z, "xz", SizeModel::ScaleOfInput(1.0));
        b.edge(y, z, "yz", SizeModel::ScaleOfInput(1.0));
        b.client_output(z, "out", SizeModel::Fixed(1.0));
        b.build().unwrap()
    }

    #[test]
    fn diamond_structure() {
        let wf = diamond();
        let a = wf.function_by_name("a").unwrap();
        let z = wf.function_by_name("z").unwrap();
        assert_eq!(wf.entry_functions(), vec![a]);
        assert_eq!(wf.terminal_functions(), vec![z]);
        assert_eq!(wf.predecessors(z).len(), 2);
        assert_eq!(wf.successors(a).len(), 2);
        assert_eq!(wf.levels().len(), 3);
        assert_eq!(wf.levels()[0], vec![a]);
        assert_eq!(wf.levels()[2], vec![z]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let wf = diamond();
        let pos: HashMap<FnId, usize> = wf
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, f)| (*f, i))
            .collect();
        for e in wf.edges() {
            if let (Endpoint::Function(s), Endpoint::Function(t)) = (e.source, e.target) {
                assert!(pos[&s] < pos[&t]);
            }
        }
    }

    #[test]
    fn cycle_detected() {
        let mut b = WorkflowBuilder::new("cyc");
        let a = b.function("a", WorkModel::fixed(0.1));
        let c = b.function("c", WorkModel::fixed(0.1));
        b.client_input(a, "in", SizeModel::Fixed(1.0));
        b.edge(a, c, "ac", SizeModel::Fixed(1.0));
        b.edge(c, a, "ca", SizeModel::Fixed(1.0));
        b.client_output(c, "out", SizeModel::Fixed(1.0));
        assert!(matches!(b.build(), Err(WorkflowError::Cycle(_))));
    }

    #[test]
    fn unreachable_detected() {
        let mut b = WorkflowBuilder::new("u");
        let a = b.function("a", WorkModel::fixed(0.1));
        let orphan = b.function("orphan", WorkModel::fixed(0.1));
        let helper = b.function("helper", WorkModel::fixed(0.1));
        b.client_input(a, "in", SizeModel::Fixed(1.0));
        b.client_output(a, "out", SizeModel::Fixed(1.0));
        // orphan and helper feed each other but nothing reaches them.
        b.edge(helper, orphan, "x", SizeModel::Fixed(1.0));
        b.edge(orphan, helper, "y", SizeModel::Fixed(1.0));
        let err = b.build().unwrap_err();
        assert!(matches!(
            err,
            WorkflowError::Cycle(_) | WorkflowError::Unreachable(_)
        ));
    }

    #[test]
    fn missing_io_detected() {
        let mut b = WorkflowBuilder::new("m");
        let a = b.function("a", WorkModel::fixed(0.1));
        b.client_input(a, "in", SizeModel::Fixed(1.0));
        assert!(matches!(b.build(), Err(WorkflowError::NoOutputs(_))));
    }

    #[test]
    fn duplicate_name_detected() {
        let mut b = WorkflowBuilder::new("d");
        b.function("a", WorkModel::fixed(0.1));
        b.function("a", WorkModel::fixed(0.1));
        assert!(matches!(
            b.build(),
            Err(WorkflowError::DuplicateFunction(_))
        ));
    }

    #[test]
    fn switch_resolution_picks_one_branch() {
        let mut b = WorkflowBuilder::new("sw");
        let gate = b.function("gate", WorkModel::fixed(0.1));
        let hot = b.function("hot", WorkModel::fixed(0.1));
        let cold = b.function("cold", WorkModel::fixed(0.1));
        b.client_input(gate, "in", SizeModel::Fixed(MB));
        b.switch_edge(gate, hot, "h", SizeModel::ScaleOfInput(1.0), 0, 0);
        b.switch_edge(gate, cold, "c", SizeModel::ScaleOfInput(1.0), 0, 1);
        b.client_output(hot, "oh", SizeModel::Fixed(1.0));
        b.client_output(cold, "oc", SizeModel::Fixed(1.0));
        let wf = b.build().unwrap();

        let take_first = wf.resolve_switches(|_, _| 0);
        let hot_id = wf.function_by_name("hot").unwrap();
        let cold_id = wf.function_by_name("cold").unwrap();
        assert!(take_first.function_active(hot_id));
        assert!(!take_first.function_active(cold_id));

        let take_second = wf.resolve_switches(|_, _| 1);
        assert!(!take_second.function_active(hot_id));
        assert!(take_second.function_active(cold_id));
        assert_eq!(take_second.active_function_count(), 2);
    }

    #[test]
    fn all_active_without_switches() {
        let wf = diamond();
        let g = wf.resolve_all_active();
        assert_eq!(g.active_function_count(), 4);
        assert!(wf.edge_ids().all(|e| g.edge_active(e)));
    }
}
