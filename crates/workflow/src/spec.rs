//! Serializable workflow definition language.
//!
//! Mirrors the paper's Fig. 7 pseudocode: per function, the sources of its
//! inputs and the destinations of its outputs, with `$USER` denoting the
//! invoking client. Specs round-trip through JSON so workflows can live
//! on disk next to the application.

use serde::{Deserialize, Serialize};

use crate::error::WorkflowError;
use crate::graph::{Endpoint, SwitchCase, Workflow};
use crate::model::{SizeModel, WorkModel};
use crate::WorkflowBuilder;

/// The client pseudo-endpoint name used in specs (`$USER` in the paper).
pub const USER_ENDPOINT: &str = "$USER";

/// Declares one output of a function: its data name, destination and size
/// model, optionally guarded by a switch case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputSpec {
    /// Logical data name.
    pub data: String,
    /// Destination function name, or [`USER_ENDPOINT`].
    pub destination: String,
    /// Size of the data relative to the function's input.
    pub size: SizeModel,
    /// Optional switch routing `(group, case)`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub switch: Option<(u32, u32)>,
}

/// Declares one function: its cost model and outputs. Inputs are implied
/// by other functions' (and the client's) outputs, exactly as in Fig. 7
/// where every edge is declared once at its producer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Unique function name.
    pub name: String,
    /// CPU cost model.
    pub work: WorkModel,
    /// Declared outputs.
    pub output_datas: Vec<OutputSpec>,
}

/// A complete workflow spec: client inputs plus per-function declarations.
///
/// # Examples
///
/// ```
/// use dataflower_workflow::{SizeModel, WorkflowSpec, WorkModel, MB};
/// use dataflower_workflow::spec::{FunctionSpec, InputSpec, OutputSpec, USER_ENDPOINT};
///
/// let spec = WorkflowSpec {
///     workflow_name: "wordcount".into(),
///     inputs: vec![InputSpec {
///         data: "text".into(),
///         destination: "start".into(),
///         size: SizeModel::Fixed(4.0 * MB),
///     }],
///     dataflows: vec![
///         FunctionSpec {
///             name: "start".into(),
///             work: WorkModel::fixed(0.01),
///             output_datas: vec![OutputSpec {
///                 data: "result".into(),
///                 destination: USER_ENDPOINT.into(),
///                 size: SizeModel::Fixed(128.0),
///                 switch: None,
///             }],
///         },
///     ],
/// };
/// let wf = spec.compile()?;
/// assert_eq!(wf.function_count(), 1);
///
/// // Round-trip through JSON.
/// let json = serde_json::to_string(&spec).unwrap();
/// let back: WorkflowSpec = serde_json::from_str(&json).unwrap();
/// assert_eq!(back.compile()?.name(), "wordcount");
/// # Ok::<(), dataflower_workflow::WorkflowError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowSpec {
    /// Workflow name.
    pub workflow_name: String,
    /// Client (`$USER`) inputs.
    pub inputs: Vec<InputSpec>,
    /// One entry per function.
    pub dataflows: Vec<FunctionSpec>,
}

/// Declares a client input: the initial data injected by the invoker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputSpec {
    /// Logical data name.
    pub data: String,
    /// Receiving function name.
    pub destination: String,
    /// Size model evaluated against the request payload size.
    pub size: SizeModel,
}

impl WorkflowSpec {
    /// Compiles the spec into a validated [`Workflow`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::UnknownFunction`] for dangling destination
    /// names, plus every structural error [`WorkflowBuilder::build`] can
    /// produce.
    pub fn compile(&self) -> Result<Workflow, WorkflowError> {
        let mut b = WorkflowBuilder::new(self.workflow_name.clone());
        let mut ids = std::collections::HashMap::new();
        for f in &self.dataflows {
            let id = b.function(f.name.clone(), f.work);
            ids.insert(f.name.clone(), id);
        }
        for inp in &self.inputs {
            let target = *ids
                .get(&inp.destination)
                .ok_or_else(|| WorkflowError::UnknownFunction(inp.destination.clone()))?;
            b.client_input(target, inp.data.clone(), inp.size);
        }
        for f in &self.dataflows {
            let src = ids[&f.name];
            for out in &f.output_datas {
                if out.destination == USER_ENDPOINT {
                    b.client_output(src, out.data.clone(), out.size);
                } else {
                    let target = *ids
                        .get(&out.destination)
                        .ok_or_else(|| WorkflowError::UnknownFunction(out.destination.clone()))?;
                    match out.switch {
                        Some((group, case)) => {
                            b.switch_edge(src, target, out.data.clone(), out.size, group, case);
                        }
                        None => {
                            b.edge(src, target, out.data.clone(), out.size);
                        }
                    }
                }
            }
        }
        b.build()
    }

    /// Extracts a spec from a compiled workflow (inverse of
    /// [`WorkflowSpec::compile`] up to declaration order).
    pub fn from_workflow(wf: &Workflow) -> WorkflowSpec {
        let mut inputs = Vec::new();
        let mut dataflows: Vec<FunctionSpec> = wf
            .function_ids()
            .map(|f| FunctionSpec {
                name: wf.function(f).name.clone(),
                work: wf.function(f).work,
                output_datas: Vec::new(),
            })
            .collect();
        for eid in wf.edge_ids() {
            let e = wf.edge(eid);
            match (e.source, e.target) {
                (Endpoint::Client, Endpoint::Function(t)) => inputs.push(InputSpec {
                    data: e.data_name.clone(),
                    destination: wf.function(t).name.clone(),
                    size: e.size,
                }),
                (Endpoint::Function(s), target) => {
                    let destination = match target {
                        Endpoint::Client => USER_ENDPOINT.to_owned(),
                        Endpoint::Function(t) => wf.function(t).name.clone(),
                    };
                    dataflows[s.index()].output_datas.push(OutputSpec {
                        data: e.data_name.clone(),
                        destination,
                        size: e.size,
                        switch: e.switch.map(|SwitchCase { group, case }| (group, case)),
                    });
                }
                (Endpoint::Client, Endpoint::Client) => {}
            }
        }
        WorkflowSpec {
            workflow_name: wf.name().to_owned(),
            inputs,
            dataflows,
        }
    }

    /// Serializes the spec to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization is infallible")
    }

    /// Parses a spec from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::BadSpec`] when the JSON does not describe
    /// a spec.
    pub fn from_json(json: &str) -> Result<WorkflowSpec, WorkflowError> {
        serde_json::from_str(json).map_err(|e| WorkflowError::BadSpec(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MB;

    fn sample() -> Workflow {
        let mut b = WorkflowBuilder::new("sample");
        let a = b.function("a", WorkModel::new(0.1, 0.02));
        let x = b.function("x", WorkModel::fixed(0.2));
        b.client_input(a, "in", SizeModel::Fixed(2.0 * MB));
        b.switch_edge(a, x, "ax", SizeModel::ScaleOfInput(0.5), 0, 0);
        b.client_output(a, "bypass", SizeModel::Fixed(8.0));
        b.client_output(x, "out", SizeModel::Fixed(16.0));
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_workflow_spec_workflow() {
        let wf = sample();
        let spec = WorkflowSpec::from_workflow(&wf);
        let back = spec.compile().unwrap();
        assert_eq!(wf, back);
    }

    #[test]
    fn roundtrip_json() {
        let spec = WorkflowSpec::from_workflow(&sample());
        let json = spec.to_json();
        let parsed = WorkflowSpec::from_json(&json).unwrap();
        assert_eq!(spec, parsed);
    }

    #[test]
    fn unknown_destination_rejected() {
        let mut spec = WorkflowSpec::from_workflow(&sample());
        spec.dataflows[0].output_datas[0].destination = "ghost".into();
        assert!(matches!(
            spec.compile(),
            Err(WorkflowError::UnknownFunction(n)) if n == "ghost"
        ));
    }

    #[test]
    fn bad_json_rejected() {
        assert!(matches!(
            WorkflowSpec::from_json("{not json"),
            Err(WorkflowError::BadSpec(_))
        ));
    }
}
