//! Serializable workflow definition language.
//!
//! Mirrors the paper's Fig. 7 pseudocode: per function, the sources of its
//! inputs and the destinations of its outputs, with `$USER` denoting the
//! invoking client. Specs round-trip through JSON so workflows can live
//! on disk next to the application (serialized by the in-tree
//! [`crate::json`] module — no external dependencies).

use crate::error::WorkflowError;
use crate::graph::{Endpoint, SwitchCase, Workflow};
use crate::json::{self, Value};
use crate::model::{SizeModel, WorkModel};
use crate::WorkflowBuilder;

/// The client pseudo-endpoint name used in specs (`$USER` in the paper).
pub const USER_ENDPOINT: &str = "$USER";

/// Declares one output of a function: its data name, destination and size
/// model, optionally guarded by a switch case.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputSpec {
    /// Logical data name.
    pub data: String,
    /// Destination function name, or [`USER_ENDPOINT`].
    pub destination: String,
    /// Size of the data relative to the function's input.
    pub size: SizeModel,
    /// Optional switch routing `(group, case)`.
    pub switch: Option<(u32, u32)>,
}

/// Declares one function: its cost model and outputs. Inputs are implied
/// by other functions' (and the client's) outputs, exactly as in Fig. 7
/// where every edge is declared once at its producer.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSpec {
    /// Unique function name.
    pub name: String,
    /// CPU cost model.
    pub work: WorkModel,
    /// Declared outputs.
    pub output_datas: Vec<OutputSpec>,
}

/// A complete workflow spec: client inputs plus per-function declarations.
///
/// # Examples
///
/// ```
/// use dataflower_workflow::{SizeModel, WorkflowSpec, WorkModel, MB};
/// use dataflower_workflow::spec::{FunctionSpec, InputSpec, OutputSpec, USER_ENDPOINT};
///
/// let spec = WorkflowSpec {
///     workflow_name: "wordcount".into(),
///     inputs: vec![InputSpec {
///         data: "text".into(),
///         destination: "start".into(),
///         size: SizeModel::Fixed(4.0 * MB),
///     }],
///     dataflows: vec![
///         FunctionSpec {
///             name: "start".into(),
///             work: WorkModel::fixed(0.01),
///             output_datas: vec![OutputSpec {
///                 data: "result".into(),
///                 destination: USER_ENDPOINT.into(),
///                 size: SizeModel::Fixed(128.0),
///                 switch: None,
///             }],
///         },
///     ],
/// };
/// let wf = spec.compile()?;
/// assert_eq!(wf.function_count(), 1);
///
/// // Round-trip through JSON.
/// let json = spec.to_json();
/// let back = WorkflowSpec::from_json(&json).unwrap();
/// assert_eq!(back.compile()?.name(), "wordcount");
/// # Ok::<(), dataflower_workflow::WorkflowError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowSpec {
    /// Workflow name.
    pub workflow_name: String,
    /// Client (`$USER`) inputs.
    pub inputs: Vec<InputSpec>,
    /// One entry per function.
    pub dataflows: Vec<FunctionSpec>,
}

/// Declares a client input: the initial data injected by the invoker.
#[derive(Debug, Clone, PartialEq)]
pub struct InputSpec {
    /// Logical data name.
    pub data: String,
    /// Receiving function name.
    pub destination: String,
    /// Size model evaluated against the request payload size.
    pub size: SizeModel,
}

impl WorkflowSpec {
    /// Compiles the spec into a validated [`Workflow`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::UnknownFunction`] for dangling destination
    /// names, plus every structural error [`WorkflowBuilder::build`] can
    /// produce.
    pub fn compile(&self) -> Result<Workflow, WorkflowError> {
        let mut b = WorkflowBuilder::new(self.workflow_name.clone());
        let mut ids = std::collections::HashMap::new();
        for f in &self.dataflows {
            let id = b.function(f.name.clone(), f.work);
            ids.insert(f.name.clone(), id);
        }
        for inp in &self.inputs {
            let target = *ids
                .get(&inp.destination)
                .ok_or_else(|| WorkflowError::UnknownFunction(inp.destination.clone()))?;
            b.client_input(target, inp.data.clone(), inp.size);
        }
        for f in &self.dataflows {
            let src = ids[&f.name];
            for out in &f.output_datas {
                if out.destination == USER_ENDPOINT {
                    b.client_output(src, out.data.clone(), out.size);
                } else {
                    let target = *ids
                        .get(&out.destination)
                        .ok_or_else(|| WorkflowError::UnknownFunction(out.destination.clone()))?;
                    match out.switch {
                        Some((group, case)) => {
                            b.switch_edge(src, target, out.data.clone(), out.size, group, case);
                        }
                        None => {
                            b.edge(src, target, out.data.clone(), out.size);
                        }
                    }
                }
            }
        }
        b.build()
    }

    /// Extracts a spec from a compiled workflow (inverse of
    /// [`WorkflowSpec::compile`] up to declaration order).
    pub fn from_workflow(wf: &Workflow) -> WorkflowSpec {
        let mut inputs = Vec::new();
        let mut dataflows: Vec<FunctionSpec> = wf
            .function_ids()
            .map(|f| FunctionSpec {
                name: wf.function(f).name.clone(),
                work: wf.function(f).work,
                output_datas: Vec::new(),
            })
            .collect();
        for eid in wf.edge_ids() {
            let e = wf.edge(eid);
            match (e.source, e.target) {
                (Endpoint::Client, Endpoint::Function(t)) => inputs.push(InputSpec {
                    data: e.data_name.clone(),
                    destination: wf.function(t).name.clone(),
                    size: e.size,
                }),
                (Endpoint::Function(s), target) => {
                    let destination = match target {
                        Endpoint::Client => USER_ENDPOINT.to_owned(),
                        Endpoint::Function(t) => wf.function(t).name.clone(),
                    };
                    dataflows[s.index()].output_datas.push(OutputSpec {
                        data: e.data_name.clone(),
                        destination,
                        size: e.size,
                        switch: e.switch.map(|SwitchCase { group, case }| (group, case)),
                    });
                }
                (Endpoint::Client, Endpoint::Client) => {}
            }
        }
        WorkflowSpec {
            workflow_name: wf.name().to_owned(),
            inputs,
            dataflows,
        }
    }

    /// Serializes the spec to pretty JSON.
    pub fn to_json(&self) -> String {
        let inputs = self.inputs.iter().map(input_to_value).collect();
        let dataflows = self.dataflows.iter().map(function_to_value).collect();
        Value::Obj(vec![
            (
                "workflow_name".into(),
                Value::Str(self.workflow_name.clone()),
            ),
            ("inputs".into(), Value::Arr(inputs)),
            ("dataflows".into(), Value::Arr(dataflows)),
        ])
        .pretty()
    }

    /// Parses a spec from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::BadSpec`] when the JSON does not describe
    /// a spec.
    pub fn from_json(text: &str) -> Result<WorkflowSpec, WorkflowError> {
        let v = json::parse(text).map_err(WorkflowError::BadSpec)?;
        spec_from_value(&v).map_err(WorkflowError::BadSpec)
    }
}

// ---- JSON encoding ------------------------------------------------------
//
// The layout matches what a derive-based serializer would emit: structs as
// objects, `SizeModel` externally tagged (`{"Fixed": 64.0}`), the optional
// `switch` key omitted when absent.

fn size_to_value(size: &SizeModel) -> Value {
    match *size {
        SizeModel::Fixed(b) => Value::Obj(vec![("Fixed".into(), Value::Num(b))]),
        SizeModel::ScaleOfInput(f) => Value::Obj(vec![("ScaleOfInput".into(), Value::Num(f))]),
        SizeModel::Affine { fixed, factor } => Value::Obj(vec![(
            "Affine".into(),
            Value::Obj(vec![
                ("fixed".into(), Value::Num(fixed)),
                ("factor".into(), Value::Num(factor)),
            ]),
        )]),
    }
}

fn work_to_value(work: &WorkModel) -> Value {
    Value::Obj(vec![
        ("base_core_secs".into(), Value::Num(work.base_core_secs)),
        ("per_mb_core_secs".into(), Value::Num(work.per_mb_core_secs)),
    ])
}

fn input_to_value(inp: &InputSpec) -> Value {
    Value::Obj(vec![
        ("data".into(), Value::Str(inp.data.clone())),
        ("destination".into(), Value::Str(inp.destination.clone())),
        ("size".into(), size_to_value(&inp.size)),
    ])
}

fn output_to_value(out: &OutputSpec) -> Value {
    let mut pairs = vec![
        ("data".into(), Value::Str(out.data.clone())),
        ("destination".into(), Value::Str(out.destination.clone())),
        ("size".into(), size_to_value(&out.size)),
    ];
    if let Some((group, case)) = out.switch {
        pairs.push((
            "switch".into(),
            Value::Arr(vec![Value::Num(group as f64), Value::Num(case as f64)]),
        ));
    }
    Value::Obj(pairs)
}

fn function_to_value(f: &FunctionSpec) -> Value {
    Value::Obj(vec![
        ("name".into(), Value::Str(f.name.clone())),
        ("work".into(), work_to_value(&f.work)),
        (
            "output_datas".into(),
            Value::Arr(f.output_datas.iter().map(output_to_value).collect()),
        ),
    ])
}

// ---- JSON decoding ------------------------------------------------------

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

fn num_field(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
}

fn arr_field<'v>(v: &'v Value, key: &str) -> Result<&'v [Value], String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing or non-array field `{key}`"))
}

fn size_from_value(v: &Value) -> Result<SizeModel, String> {
    if let Some(b) = v.get("Fixed").and_then(Value::as_f64) {
        return Ok(SizeModel::Fixed(b));
    }
    if let Some(f) = v.get("ScaleOfInput").and_then(Value::as_f64) {
        return Ok(SizeModel::ScaleOfInput(f));
    }
    if let Some(a) = v.get("Affine") {
        return Ok(SizeModel::Affine {
            fixed: num_field(a, "fixed")?,
            factor: num_field(a, "factor")?,
        });
    }
    Err(format!("unrecognized size model {v:?}"))
}

fn work_from_value(v: &Value) -> Result<WorkModel, String> {
    let base = num_field(v, "base_core_secs")?;
    let per_mb = num_field(v, "per_mb_core_secs")?;
    if !(base.is_finite() && base >= 0.0 && per_mb.is_finite() && per_mb >= 0.0) {
        return Err(format!("invalid work model ({base}, {per_mb})"));
    }
    Ok(WorkModel::new(base, per_mb))
}

fn switch_from_value(v: &Value) -> Result<(u32, u32), String> {
    let items = v.as_arr().ok_or("`switch` must be a [group, case] array")?;
    let in_u32 = |n: f64| n.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&n);
    match items {
        [Value::Num(g), Value::Num(c)] if in_u32(*g) && in_u32(*c) => Ok((*g as u32, *c as u32)),
        _ => Err(format!("invalid switch {v:?}")),
    }
}

fn spec_from_value(v: &Value) -> Result<WorkflowSpec, String> {
    let workflow_name = str_field(v, "workflow_name")?;
    let mut inputs = Vec::new();
    for inp in arr_field(v, "inputs")? {
        inputs.push(InputSpec {
            data: str_field(inp, "data")?,
            destination: str_field(inp, "destination")?,
            size: size_from_value(inp.get("size").ok_or("input missing `size`")?)?,
        });
    }
    let mut dataflows = Vec::new();
    for f in arr_field(v, "dataflows")? {
        let mut output_datas = Vec::new();
        for out in arr_field(f, "output_datas")? {
            output_datas.push(OutputSpec {
                data: str_field(out, "data")?,
                destination: str_field(out, "destination")?,
                size: size_from_value(out.get("size").ok_or("output missing `size`")?)?,
                switch: match out.get("switch") {
                    None | Some(Value::Null) => None,
                    Some(sw) => Some(switch_from_value(sw)?),
                },
            });
        }
        dataflows.push(FunctionSpec {
            name: str_field(f, "name")?,
            work: work_from_value(f.get("work").ok_or("function missing `work`")?)?,
            output_datas,
        });
    }
    Ok(WorkflowSpec {
        workflow_name,
        inputs,
        dataflows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MB;

    fn sample() -> Workflow {
        let mut b = WorkflowBuilder::new("sample");
        let a = b.function("a", WorkModel::new(0.1, 0.02));
        let x = b.function("x", WorkModel::fixed(0.2));
        b.client_input(a, "in", SizeModel::Fixed(2.0 * MB));
        b.switch_edge(a, x, "ax", SizeModel::ScaleOfInput(0.5), 0, 0);
        b.client_output(a, "bypass", SizeModel::Fixed(8.0));
        b.client_output(x, "out", SizeModel::Fixed(16.0));
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_workflow_spec_workflow() {
        let wf = sample();
        let spec = WorkflowSpec::from_workflow(&wf);
        let back = spec.compile().unwrap();
        assert_eq!(wf, back);
    }

    #[test]
    fn roundtrip_json() {
        let spec = WorkflowSpec::from_workflow(&sample());
        let json = spec.to_json();
        let parsed = WorkflowSpec::from_json(&json).unwrap();
        assert_eq!(spec, parsed);
    }

    #[test]
    fn unknown_destination_rejected() {
        let mut spec = WorkflowSpec::from_workflow(&sample());
        spec.dataflows[0].output_datas[0].destination = "ghost".into();
        assert!(matches!(
            spec.compile(),
            Err(WorkflowError::UnknownFunction(n)) if n == "ghost"
        ));
    }

    #[test]
    fn bad_json_rejected() {
        assert!(matches!(
            WorkflowSpec::from_json("{not json"),
            Err(WorkflowError::BadSpec(_))
        ));
    }

    #[test]
    fn out_of_range_switch_rejected() {
        // 2^32 + 1 is exactly representable in f64 but exceeds u32.
        let json = r#"{
          "workflow_name": "w",
          "inputs": [{"data": "in", "destination": "a", "size": {"Fixed": 1.0}}],
          "dataflows": [{
            "name": "a",
            "work": {"base_core_secs": 0.1, "per_mb_core_secs": 0.0},
            "output_datas": [{
              "data": "out", "destination": "$USER",
              "size": {"Fixed": 1.0}, "switch": [4294967297, 0]
            }]
          }]
        }"#;
        assert!(matches!(
            WorkflowSpec::from_json(json),
            Err(WorkflowError::BadSpec(m)) if m.contains("switch")
        ));
    }
}
