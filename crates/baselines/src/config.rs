//! Control-flow baseline configurations.

use dataflower_cluster::ContainerSpec;
use dataflower_sim::SimDuration;

/// How intermediate data moves between functions in a control-flow system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPassing {
    /// Everything round-trips through the backend storage node (the
    /// production-platform default of §3.2: `Put()` after compute,
    /// `Get()` after trigger).
    BackendStorage,
    /// FaaSFlow: co-located function pairs pass data through node-local
    /// memory; cross-node pairs still use backend storage. Cached data is
    /// only freed when the whole request completes (§7 "the caching
    /// design such as FaaSFlow can only remove the cache after each
    /// request completion").
    FaaSFlowHybrid,
    /// SONIC: outputs persist to the source host's VM storage; each
    /// destination container fetches peer-to-peer from the source node
    /// when (and only when) it is triggered.
    SonicLocal,
}

/// Configuration of a [`ControlFlowEngine`](crate::ControlFlowEngine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlFlowConfig {
    /// Display name of the system.
    pub label: SystemLabel,
    /// Container resource spec.
    pub container_spec: ContainerSpec,
    /// Scale-out cap per function.
    pub max_containers_per_function: usize,
    /// State-management latency between a predecessor completing and the
    /// successor being triggered (Fig. 2c measures ~63 ms on production
    /// platforms).
    pub trigger_overhead: SimDuration,
    /// Data path.
    pub data_passing: DataPassing,
    /// Centralized platforms trigger strictly in topological order
    /// (§3.2.3 "in-order triggering"); decentralized ones (FaaSFlow,
    /// SONIC) trigger as soon as a function's own predecessors finish.
    pub in_order_triggering: bool,
    /// Minimum spacing between scale-out decisions per function (the
    /// platform's reactive autoscaler ramp, identical across systems).
    pub scale_cooldown: SimDuration,
}

/// Known baseline identities (drives [`Orchestrator::name`]).
///
/// [`Orchestrator::name`]: dataflower_cluster::Orchestrator::name
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemLabel {
    /// A production-style centralized workflow orchestrator.
    Centralized,
    /// FaaSFlow with its WorkerSP decentralized scheduling.
    FaaSFlow,
    /// SONIC application-aware data passing.
    Sonic,
    /// AWS-Step-Functions-style stateful state machine (Fig. 19).
    StateMachine,
}

impl SystemLabel {
    /// The display string used in reports and figures.
    pub fn as_str(&self) -> &'static str {
        match self {
            SystemLabel::Centralized => "Centralized",
            SystemLabel::FaaSFlow => "FaaSFlow",
            SystemLabel::Sonic => "SONIC",
            SystemLabel::StateMachine => "StateMachine",
        }
    }
}

impl ControlFlowConfig {
    /// The production-platform stand-in used for the Fig. 2
    /// characterization: backend storage everywhere, heavyweight state
    /// machine, strict in-order triggering.
    pub fn centralized() -> Self {
        ControlFlowConfig {
            label: SystemLabel::Centralized,
            container_spec: ContainerSpec::default(),
            max_containers_per_function: 64,
            trigger_overhead: SimDuration::from_millis(63),
            data_passing: DataPassing::BackendStorage,
            in_order_triggering: true,
            scale_cooldown: SimDuration::from_millis(100),
        }
    }

    /// FaaSFlow (§9.1's first comparator): decentralized triggering with
    /// local-memory data passing for co-located functions.
    pub fn faasflow() -> Self {
        ControlFlowConfig {
            label: SystemLabel::FaaSFlow,
            container_spec: ContainerSpec::default(),
            max_containers_per_function: 64,
            trigger_overhead: SimDuration::from_millis(15),
            data_passing: DataPassing::FaaSFlowHybrid,
            in_order_triggering: false,
            scale_cooldown: SimDuration::from_millis(100),
        }
    }

    /// SONIC (§9.1's second comparator): host-local storage with
    /// fetch-on-trigger peer-to-peer data passing.
    pub fn sonic() -> Self {
        ControlFlowConfig {
            label: SystemLabel::Sonic,
            container_spec: ContainerSpec::default(),
            max_containers_per_function: 64,
            trigger_overhead: SimDuration::from_millis(20),
            data_passing: DataPassing::SonicLocal,
            in_order_triggering: false,
            scale_cooldown: SimDuration::from_millis(100),
        }
    }

    /// The stateful state-machine deployment of Fig. 19: like the
    /// centralized platform but with a leaner transition (the state
    /// machine on EC2 caches unlimited context data).
    pub fn state_machine() -> Self {
        ControlFlowConfig {
            label: SystemLabel::StateMachine,
            container_spec: ContainerSpec::default(),
            max_containers_per_function: 64,
            trigger_overhead: SimDuration::from_millis(30),
            data_passing: DataPassing::BackendStorage,
            in_order_triggering: true,
            scale_cooldown: SimDuration::from_millis(100),
        }
    }

    /// Sets the container spec (Fig. 17 scale-up sweep).
    pub fn with_container_spec(mut self, spec: ContainerSpec) -> Self {
        self.container_spec = spec;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shape() {
        let c = ControlFlowConfig::centralized();
        assert!(c.in_order_triggering);
        assert_eq!(c.data_passing, DataPassing::BackendStorage);
        assert_eq!(c.trigger_overhead, SimDuration::from_millis(63));

        let f = ControlFlowConfig::faasflow();
        assert!(!f.in_order_triggering);
        assert_eq!(f.data_passing, DataPassing::FaaSFlowHybrid);

        let s = ControlFlowConfig::sonic();
        assert_eq!(s.data_passing, DataPassing::SonicLocal);
        assert_eq!(s.label.as_str(), "SONIC");
    }
}
