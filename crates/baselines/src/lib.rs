//! # dataflower-baselines
//!
//! The control-flow comparators the paper evaluates DataFlower against:
//!
//! * **Centralized** ([`ControlFlowConfig::centralized`]) — a
//!   production-style workflow orchestrator: strict in-order triggering
//!   with a heavyweight state machine (~63 ms per transition, Fig. 2c)
//!   and all intermediate data round-tripping through backend storage;
//! * **FaaSFlow** ([`ControlFlowConfig::faasflow`]) — decentralized
//!   WorkerSP scheduling with local-memory data passing for co-located
//!   functions, per-request cache lifetime;
//! * **SONIC** ([`ControlFlowConfig::sonic`]) — host-local storage with
//!   peer-to-peer fetch-on-trigger data passing;
//! * **StateMachine** ([`ControlFlowConfig::state_machine`]) — the
//!   stateful AWS-Step-Functions-style deployment of Fig. 19.
//!
//! All share one [`ControlFlowEngine`] parameterized by
//! [`ControlFlowConfig`]; the differences are exactly the knobs the paper
//! identifies: trigger ordering and overhead, and the data path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;

pub use config::{ControlFlowConfig, DataPassing, SystemLabel};
pub use engine::{ControlFlowEngine, FnBreakdown};
