//! The control-flow baseline engine.
//!
//! One parameterized engine implements all three comparators (plus the
//! Fig. 19 state machine): a function triggers only when **all its
//! predecessors complete** (optionally in strict topological order with a
//! state-management delay), then runs the sequential
//! `Get() → compute → Put()` cycle of Fig. 1 inside its container. The
//! container is occupied for the whole cycle — CPU idles during I/O and
//! the network idles during compute, the "sequential resource usage" the
//! paper measures in Fig. 2b.

use std::collections::{BTreeMap, VecDeque};

use dataflower_cluster::{
    ContainerId, NodeId, Orchestrator, Placement, RequestId, Route, TransferDone, TriggerKind,
    TriggerRecord, WfId, World,
};
use dataflower_metrics::Samples;
use dataflower_sim::SimTime;
use dataflower_workflow::{EdgeId, Endpoint, FnId};

use crate::config::{ControlFlowConfig, DataPassing};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Token {
    /// The post-predecessor state-management delay elapsed → ready.
    TriggerReady { req: RequestId, func: FnId },
    /// One input `Get()` finished.
    GetDone { req: RequestId, func: FnId },
    /// Compute finished.
    Compute { req: RequestId, func: FnId },
    /// One output `Put()` finished. `edge` identifies the data; client
    /// puts additionally resolve the request's result.
    PutDone {
        req: RequestId,
        func: FnId,
        edge: EdgeId,
        client: bool,
    },
    /// Autoscaler cooldown elapsed: retry dispatch/scale-out for a pool.
    Pump { wf: WfId, func: FnId },
}

#[derive(Debug, Default)]
struct Tokens {
    slab: Vec<Token>,
}

impl Tokens {
    fn mint(&mut self, t: Token) -> u64 {
        self.slab.push(t);
        (self.slab.len() - 1) as u64
    }
    fn get(&self, id: u64) -> Token {
        self.slab[id as usize]
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    WaitingPreds,
    Queued,
    Getting,
    Computing,
    Putting,
    Complete,
}

#[derive(Debug)]
struct Invocation {
    preds_missing: usize,
    phase: Phase,
    gets_missing: usize,
    puts_missing: usize,
    /// `(edge, bytes, source node)` for every active input edge.
    pending_inputs: Vec<(EdgeId, f64, Option<NodeId>)>,
    container: Option<ContainerId>,
    get_started: SimTime,
    compute_started: SimTime,
}

#[derive(Debug)]
struct ReqState {
    outputs_missing: usize,
    /// Strict topological trigger pointer (centralized platforms).
    topo_next: usize,
    ready: Vec<bool>,
    triggered: Vec<bool>,
    /// Node-local cache bytes to free when the request completes
    /// (FaaSFlow's per-request cache lifetime).
    cached_bytes: f64,
}

#[derive(Debug)]
struct Pool {
    home: NodeId,
    members: usize,
    idle: VecDeque<ContainerId>,
    starting: usize,
    queue: VecDeque<RequestId>,
    /// Autoscaler ramp: earliest instant the next scale-out may happen.
    next_scale_ok: SimTime,
    /// A cooldown-retry timer is already armed.
    pump_armed: bool,
}

/// Per-function communication/computation breakdown accumulator (Fig. 2a).
#[derive(Debug, Default, Clone)]
pub struct FnBreakdown {
    /// Seconds spent in `Get()`/`Put()` per invocation.
    pub comm: Samples,
    /// Seconds spent computing per invocation.
    pub comp: Samples,
}

/// The control-flow baseline engine (centralized platform, FaaSFlow or
/// SONIC depending on its [`ControlFlowConfig`]).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use dataflower_baselines::{ControlFlowConfig, ControlFlowEngine};
/// use dataflower_cluster::{run_to_idle, ClusterConfig, SpreadPlacement, World};
/// use dataflower_sim::SimTime;
/// use dataflower_workflow::{SizeModel, WorkModel, WorkflowBuilder, MB};
///
/// let mut b = WorkflowBuilder::new("two-stage");
/// let a = b.function("a", WorkModel::new(0.02, 0.01));
/// let z = b.function("z", WorkModel::new(0.02, 0.01));
/// b.client_input(a, "in", SizeModel::Fixed(MB));
/// b.edge(a, z, "mid", SizeModel::ScaleOfInput(0.5));
/// b.client_output(z, "out", SizeModel::Fixed(1024.0));
/// let wf = Arc::new(b.build()?);
///
/// let mut world = World::new(ClusterConfig::default());
/// let id = world.add_workflow(wf);
/// world.submit_request(id, MB, SimTime::ZERO);
/// let mut engine = ControlFlowEngine::new(ControlFlowConfig::faasflow(), SpreadPlacement);
/// let report = run_to_idle(&mut world, &mut engine);
/// assert_eq!(report.primary().completed, 1);
/// # Ok::<(), dataflower_workflow::WorkflowError>(())
/// ```
#[derive(Debug)]
pub struct ControlFlowEngine<P> {
    cfg: ControlFlowConfig,
    placement: P,
    tokens: Tokens,
    pools: BTreeMap<(WfId, FnId), Pool>,
    container_pool_key: BTreeMap<ContainerId, (WfId, FnId)>,
    invocations: BTreeMap<(RequestId, FnId), Invocation>,
    requests: BTreeMap<RequestId, ReqState>,
    breakdown: BTreeMap<(WfId, FnId), FnBreakdown>,
    comm_secs_total: f64,
    comm_ops: u64,
}

impl<P: Placement> ControlFlowEngine<P> {
    /// Creates an engine with the given configuration and placement.
    pub fn new(cfg: ControlFlowConfig, placement: P) -> Self {
        ControlFlowEngine {
            cfg,
            placement,
            tokens: Tokens::default(),
            pools: BTreeMap::new(),
            container_pool_key: BTreeMap::new(),
            invocations: BTreeMap::new(),
            requests: BTreeMap::new(),
            breakdown: BTreeMap::new(),
            comm_secs_total: 0.0,
            comm_ops: 0,
        }
    }

    /// Per-function comm/comp breakdown collected so far (Fig. 2a).
    pub fn breakdown(&self) -> impl Iterator<Item = (&(WfId, FnId), &FnBreakdown)> {
        self.breakdown.iter()
    }

    /// Mean seconds per storage/pipe operation (Fig. 19's communication
    /// time), and the operation count.
    pub fn comm_time(&self) -> (f64, u64) {
        if self.comm_ops == 0 {
            (0.0, 0)
        } else {
            (self.comm_secs_total / self.comm_ops as f64, self.comm_ops)
        }
    }

    fn home_node(&mut self, world: &World, wf: WfId, func: FnId) -> NodeId {
        if let Some(pool) = self.pools.get(&(wf, func)) {
            return pool.home;
        }
        let home = self.placement.node_for(world, wf, func);
        self.pools.insert(
            (wf, func),
            Pool {
                home,
                members: 0,
                idle: VecDeque::new(),
                starting: 0,
                queue: VecDeque::new(),
                next_scale_ok: SimTime::ZERO,
                pump_armed: false,
            },
        );
        home
    }

    /// Predecessor `func` of `req` completed: propagate to successors,
    /// applying the state-management trigger overhead.
    fn notify_successors(&mut self, world: &mut World, req: RequestId, func: FnId) {
        let wf = world.request(req).wf;
        let graph = std::sync::Arc::clone(world.workflow(wf));
        let active = world.request(req).active.clone();
        for succ in graph.successors(func) {
            if !active.function_active(succ) {
                continue;
            }
            let inv = self
                .invocations
                .get_mut(&(req, succ))
                .expect("invocation exists");
            debug_assert!(inv.preds_missing > 0);
            inv.preds_missing -= 1;
            if inv.preds_missing == 0 {
                let t = self.tokens.mint(Token::TriggerReady { req, func: succ });
                world.timer(self.cfg.trigger_overhead, t);
            }
        }
    }

    /// A function became ready (all predecessors complete, overhead paid);
    /// apply the in-order gate, then enqueue whatever may trigger.
    fn on_ready(&mut self, world: &mut World, req: RequestId, func: FnId) {
        let wf = world.request(req).wf;
        world.note_trigger(TriggerRecord {
            req,
            wf,
            func,
            kind: TriggerKind::Ready,
        });
        let graph = std::sync::Arc::clone(world.workflow(wf));
        let active = world.request(req).active.clone();
        let state = self.requests.get_mut(&req).expect("request state");
        state.ready[func.index()] = true;
        let mut to_trigger = Vec::new();
        if self.cfg.in_order_triggering {
            // Trigger strictly in topological order: stall until every
            // earlier (active) function has been triggered.
            while state.topo_next < graph.topo_order().len() {
                let f = graph.topo_order()[state.topo_next];
                if !active.function_active(f) {
                    state.topo_next += 1;
                    continue;
                }
                if state.ready[f.index()] && !state.triggered[f.index()] {
                    state.triggered[f.index()] = true;
                    state.topo_next += 1;
                    to_trigger.push(f);
                } else {
                    break;
                }
            }
        } else if !state.triggered[func.index()] {
            state.triggered[func.index()] = true;
            to_trigger.push(func);
        }
        for f in to_trigger {
            self.enqueue(world, req, f);
        }
    }

    fn enqueue(&mut self, world: &mut World, req: RequestId, func: FnId) {
        let wf = world.request(req).wf;
        self.home_node(world, wf, func);
        let inv = self
            .invocations
            .get_mut(&(req, func))
            .expect("invocation exists");
        inv.phase = Phase::Queued;
        let pool = self.pools.get_mut(&(wf, func)).expect("pool ensured");
        pool.queue.push_back(req);
        self.pump(world, wf, func);
    }

    fn pump(&mut self, world: &mut World, wf: WfId, func: FnId) {
        loop {
            let pool = self.pools.get_mut(&(wf, func)).expect("pool exists");
            if pool.queue.is_empty() {
                return;
            }
            let Some(c) = pool.idle.pop_front() else {
                break;
            };
            let req = pool.queue.pop_front().expect("queue non-empty");
            self.start_invocation(world, c, req, func);
        }
        // Scale out for the remaining queue — reactive and rate-limited:
        // at most one cold start per cooldown window per function. A
        // suppressed attempt arms a retry timer.
        let spec = self.cfg.container_spec;
        let max = self.cfg.max_containers_per_function;
        let now = world.now();
        let (want, home, gated) = {
            let pool = self.pools.get_mut(&(wf, func)).expect("pool exists");
            let want = pool.queue.len();
            if want <= pool.starting || pool.members + pool.starting >= max {
                return;
            }
            (want, pool.home, now < pool.next_scale_ok)
        };
        if gated {
            self.arm_pump(world, wf, func);
            return;
        }
        // On Err the node is exhausted; invocations wait for idles.
        if let Ok(c) = world.start_container(home, wf, func, spec) {
            let cooldown = self.cfg.scale_cooldown;
            let pool = self.pools.get_mut(&(wf, func)).expect("pool exists");
            pool.starting += 1;
            pool.next_scale_ok = now + cooldown;
            self.container_pool_key.insert(c, (wf, func));
            if want > pool.starting {
                self.arm_pump(world, wf, func);
            }
        }
    }

    fn arm_pump(&mut self, world: &mut World, wf: WfId, func: FnId) {
        let delay = {
            let pool = self.pools.get_mut(&(wf, func)).expect("pool exists");
            if pool.pump_armed {
                return;
            }
            pool.pump_armed = true;
            pool.next_scale_ok
                .saturating_duration_since(world.now())
                .max(dataflower_sim::SimDuration::from_millis(1))
        };
        let t = self.tokens.mint(Token::Pump { wf, func });
        world.timer(delay, t);
    }

    /// The `Get()` phase: load every input, per the system's data path.
    fn start_invocation(&mut self, world: &mut World, c: ContainerId, req: RequestId, func: FnId) {
        let wf = world.request(req).wf;
        world.note_trigger(TriggerRecord {
            req,
            wf,
            func,
            kind: TriggerKind::Started,
        });
        let dst_node = world.container(c).node;
        let inputs = {
            let inv = self
                .invocations
                .get_mut(&(req, func))
                .expect("invocation exists");
            inv.container = Some(c);
            inv.phase = Phase::Getting;
            inv.get_started = world.now();
            inv.pending_inputs.clone()
        };
        let mut gets = 0usize;
        for (edge, bytes, src_node) in inputs {
            let route = match self.cfg.data_passing {
                DataPassing::BackendStorage => Route::FromStorage { dst: c },
                DataPassing::FaaSFlowHybrid => match src_node {
                    Some(n) if n == dst_node => Route::Local {
                        node: dst_node,
                        via_container: None,
                    },
                    // Cross-node (and user input): backend storage.
                    _ => Route::FromStorage { dst: c },
                },
                DataPassing::SonicLocal => match src_node {
                    // Fetch-on-trigger from the producer host's VM
                    // storage, same-node or peer-to-peer.
                    Some(n) => Route::DiskRead {
                        src_node: n,
                        dst: c,
                    },
                    // User input still comes from backend storage.
                    None => Route::FromStorage { dst: c },
                },
            };
            let tag = self.tokens.mint(Token::GetDone { req, func });
            world.transfer(route, bytes, tag);
            let _ = edge;
            gets += 1;
        }
        let inv = self
            .invocations
            .get_mut(&(req, func))
            .expect("invocation exists");
        inv.gets_missing = gets;
        if gets == 0 {
            self.begin_compute(world, req, func);
        }
    }

    fn begin_compute(&mut self, world: &mut World, req: RequestId, func: FnId) {
        let wf = world.request(req).wf;
        let graph = std::sync::Arc::clone(world.workflow(wf));
        let (c, get_started) = {
            let inv = self
                .invocations
                .get_mut(&(req, func))
                .expect("invocation exists");
            inv.phase = Phase::Computing;
            inv.compute_started = world.now();
            (inv.container.expect("dispatched"), inv.get_started)
        };
        // Record the Get() portion of the communication time.
        let get_secs = world.now().duration_since(get_started).as_secs_f64();
        self.record_comm(wf, func, get_secs);
        let input_bytes = world.request(req).input_bytes[func.index()];
        let work = graph.function(func).work.core_secs(input_bytes);
        let t = self.tokens.mint(Token::Compute { req, func });
        world.begin_compute(c, work, t);
    }

    /// The `Put()` phase after compute.
    fn begin_puts(&mut self, world: &mut World, req: RequestId, func: FnId) {
        let wf = world.request(req).wf;
        let graph = std::sync::Arc::clone(world.workflow(wf));
        let active = world.request(req).active.clone();
        let input_bytes = world.request(req).input_bytes[func.index()];
        let (c, comp_started) = {
            let inv = self
                .invocations
                .get_mut(&(req, func))
                .expect("invocation exists");
            inv.phase = Phase::Putting;
            (inv.container.expect("dispatched"), inv.compute_started)
        };
        let comp_secs = world.now().duration_since(comp_started).as_secs_f64();
        self.breakdown
            .entry((wf, func))
            .or_default()
            .comp
            .push(comp_secs);
        let src_node = world.container(c).node;

        let mut puts = 0usize;
        for eid in graph.outputs(func).to_vec() {
            if !active.edge_active(eid) {
                continue;
            }
            let e = graph.edge(eid);
            let bytes = e.size.bytes(input_bytes);
            let is_client = e.target == Endpoint::Client;
            // Register the data with the destination before the transfer
            // resolves so the successor knows its input sizes.
            if let Endpoint::Function(dst) = e.target {
                world.request_mut(req).input_bytes[dst.index()] += bytes;
                let dst_home = self.home_node(world, wf, dst);
                let src_for_get = match self.cfg.data_passing {
                    DataPassing::BackendStorage => None,
                    // FaaSFlow/SONIC gets read from where the producer ran.
                    _ => Some(src_node),
                };
                let _ = dst_home;
                let dst_inv = self
                    .invocations
                    .get_mut(&(req, dst))
                    .expect("invocation exists");
                dst_inv.pending_inputs.push((eid, bytes, src_for_get));
            }
            let route = match self.cfg.data_passing {
                DataPassing::BackendStorage => Route::ToStorage { src: c },
                DataPassing::FaaSFlowHybrid => {
                    if is_client {
                        Route::ToStorage { src: c }
                    } else {
                        let dst = match e.target {
                            Endpoint::Function(d) => d,
                            Endpoint::Client => unreachable!(),
                        };
                        let dst_home = self.home_node(world, wf, dst);
                        if dst_home == src_node {
                            // Local memory cache; lives until the request
                            // completes. A memory copy — container TC does
                            // not apply.
                            world.cache_add(bytes);
                            self.requests
                                .get_mut(&req)
                                .expect("request state")
                                .cached_bytes += bytes;
                            Route::Local {
                                node: src_node,
                                via_container: None,
                            }
                        } else {
                            Route::ToStorage { src: c }
                        }
                    }
                }
                // SONIC persists to the source host's VM storage; the
                // write lands in the page cache at memory speed, so it
                // costs the container's egress only.
                DataPassing::SonicLocal => {
                    if is_client {
                        Route::ToStorage { src: c }
                    } else {
                        Route::Local {
                            node: src_node,
                            via_container: None,
                        }
                    }
                }
            };
            let tag = self.tokens.mint(Token::PutDone {
                req,
                func,
                edge: eid,
                client: is_client,
            });
            world.transfer(route, bytes, tag);
            puts += 1;
        }
        let inv = self
            .invocations
            .get_mut(&(req, func))
            .expect("invocation exists");
        inv.puts_missing = puts;
        inv.compute_started = world.now(); // reuse as put phase start
        if puts == 0 {
            self.finish_invocation(world, req, func);
        }
    }

    fn finish_invocation(&mut self, world: &mut World, req: RequestId, func: FnId) {
        let wf = world.request(req).wf;
        let (c, put_started) = {
            let inv = self
                .invocations
                .get_mut(&(req, func))
                .expect("invocation exists");
            inv.phase = Phase::Complete;
            (inv.container.expect("dispatched"), inv.compute_started)
        };
        let put_secs = world.now().duration_since(put_started).as_secs_f64();
        self.record_comm(wf, func, put_secs);
        world.note_trigger(TriggerRecord {
            req,
            wf,
            func,
            kind: TriggerKind::Finished,
        });
        // Only now — after Get, compute AND Put — is the container free.
        let key = self.container_pool_key[&c];
        let pool = self.pools.get_mut(&key).expect("pool exists");
        pool.idle.push_back(c);
        self.notify_successors(world, req, func);
        self.pump(world, key.0, key.1);
    }

    fn record_comm(&mut self, wf: WfId, func: FnId, secs: f64) {
        self.breakdown
            .entry((wf, func))
            .or_default()
            .comm
            .push(secs);
        self.comm_secs_total += secs;
        self.comm_ops += 1;
    }

    fn finish_request_output(&mut self, world: &mut World, req: RequestId) {
        let state = self.requests.get_mut(&req).expect("request state");
        debug_assert!(state.outputs_missing > 0);
        state.outputs_missing -= 1;
        if state.outputs_missing == 0 {
            // Free FaaSFlow's per-request local cache.
            let cached = state.cached_bytes;
            if cached > 0.0 {
                world.cache_remove(cached);
            }
            world.complete_request(req);
        }
    }
}

impl<P: Placement> Orchestrator for ControlFlowEngine<P> {
    fn name(&self) -> &str {
        self.cfg.label.as_str()
    }

    fn on_request(&mut self, world: &mut World, req: RequestId) {
        let wf = world.request(req).wf;
        let graph = std::sync::Arc::clone(world.workflow(wf));
        let active = world.request(req).active.clone();
        let payload = world.request(req).payload_bytes;
        let n = graph.function_count();

        for f in graph.function_ids() {
            if !active.function_active(f) {
                continue;
            }
            let preds = graph
                .predecessors(f)
                .into_iter()
                .filter(|p| active.function_active(*p))
                .count();
            self.invocations.insert(
                (req, f),
                Invocation {
                    preds_missing: preds,
                    phase: Phase::WaitingPreds,
                    gets_missing: 0,
                    puts_missing: 0,
                    pending_inputs: Vec::new(),
                    container: None,
                    get_started: SimTime::ZERO,
                    compute_started: SimTime::ZERO,
                },
            );
        }
        let outputs_missing = graph
            .client_outputs()
            .filter(|e| active.edge_active(*e))
            .count();
        self.requests.insert(
            req,
            ReqState {
                outputs_missing,
                topo_next: 0,
                ready: vec![false; n],
                triggered: vec![false; n],
                cached_bytes: 0.0,
            },
        );
        if outputs_missing == 0 {
            world.complete_request(req);
            return;
        }

        // Client inputs are staged in backend storage (Fig. 1: user-data
        // flows through the data plane); entry functions Get them on
        // trigger.
        for eid in graph.client_inputs().collect::<Vec<_>>() {
            if !active.edge_active(eid) {
                continue;
            }
            let e = graph.edge(eid);
            let bytes = e.size.bytes(payload);
            if let Endpoint::Function(dst) = e.target {
                world.request_mut(req).input_bytes[dst.index()] += bytes;
                self.invocations
                    .get_mut(&(req, dst))
                    .expect("invocation exists")
                    .pending_inputs
                    .push((eid, bytes, None));
            }
        }
        // Entry functions have zero predecessors → ready after the
        // orchestrator's initial state transition.
        for f in graph.function_ids() {
            if !active.function_active(f) {
                continue;
            }
            if self.invocations[&(req, f)].preds_missing == 0 {
                let t = self.tokens.mint(Token::TriggerReady { req, func: f });
                world.timer(self.cfg.trigger_overhead, t);
            }
        }
    }

    fn on_cold_start_done(&mut self, world: &mut World, container: ContainerId) {
        let key = self.container_pool_key[&container];
        let pool = self.pools.get_mut(&key).expect("pool exists");
        pool.starting -= 1;
        pool.members += 1;
        pool.idle.push_back(container);
        self.pump(world, key.0, key.1);
    }

    fn on_compute_done(&mut self, world: &mut World, _container: ContainerId, token: u64) {
        let Token::Compute { req, func } = self.tokens.get(token) else {
            panic!("compute token mismatch");
        };
        self.begin_puts(world, req, func);
    }

    fn on_flow_done(&mut self, world: &mut World, done: TransferDone) {
        match self.tokens.get(done.tag) {
            Token::GetDone { req, func } => {
                let inv = self
                    .invocations
                    .get_mut(&(req, func))
                    .expect("invocation exists");
                debug_assert!(inv.gets_missing > 0);
                inv.gets_missing -= 1;
                if inv.gets_missing == 0 {
                    self.begin_compute(world, req, func);
                }
            }
            Token::PutDone {
                req,
                func,
                edge: _,
                client,
            } => {
                if client {
                    self.finish_request_output(world, req);
                }
                let inv = self
                    .invocations
                    .get_mut(&(req, func))
                    .expect("invocation exists");
                debug_assert!(inv.puts_missing > 0);
                inv.puts_missing -= 1;
                if inv.puts_missing == 0 {
                    self.finish_invocation(world, req, func);
                }
            }
            other => panic!("unexpected flow token {other:?}"),
        }
    }

    fn on_timer(&mut self, world: &mut World, token: u64) {
        match self.tokens.get(token) {
            Token::TriggerReady { req, func } => self.on_ready(world, req, func),
            Token::Pump { wf, func } => {
                self.pools
                    .get_mut(&(wf, func))
                    .expect("pool exists")
                    .pump_armed = false;
                self.pump(world, wf, func);
            }
            other => panic!("unexpected timer token {other:?}"),
        }
    }
}
