//! Behavioural tests of the control-flow baselines and their contrast
//! with DataFlower.

use std::sync::Arc;

use dataflower::{DataFlowerConfig, DataFlowerEngine};
use dataflower_baselines::{ControlFlowConfig, ControlFlowEngine};
use dataflower_cluster::{
    run, run_to_idle, ClusterConfig, RunReport, SpreadPlacement, TriggerKind, World,
};
use dataflower_sim::{SimDuration, SimTime};
use dataflower_workflow::{SizeModel, WorkModel, Workflow, WorkflowBuilder, MB};

fn fanout_wf(fan_out: usize, input_mb: f64) -> Arc<Workflow> {
    let mut b = WorkflowBuilder::new("wc");
    let start = b.function("start", WorkModel::new(0.005, 0.002));
    let merge = b.function("merge", WorkModel::new(0.005, 0.01));
    b.client_input(start, "text", SizeModel::Fixed(input_mb * MB));
    for i in 0..fan_out {
        let count = b.function(format!("count_{i}"), WorkModel::new(0.002, 0.03));
        b.edge(
            start,
            count,
            "file",
            SizeModel::ScaleOfInput(1.0 / fan_out as f64),
        );
        b.edge(count, merge, "counts", SizeModel::ScaleOfInput(0.08));
    }
    b.client_output(merge, "result", SizeModel::Fixed(2048.0));
    Arc::new(b.build().unwrap())
}

fn run_one(cfg: ControlFlowConfig, wf: Arc<Workflow>, n: usize) -> RunReport {
    let mut world = World::new(ClusterConfig::default());
    let id = world.add_workflow(wf);
    for i in 0..n {
        world.submit_request(id, 4.0 * MB, SimTime::from_millis(500 * i as u64));
    }
    let mut engine = ControlFlowEngine::new(cfg, SpreadPlacement);
    run(&mut world, &mut engine, SimTime::from_secs(600))
}

#[test]
fn all_baselines_complete_requests() {
    let wf = fanout_wf(4, 4.0);
    for cfg in [
        ControlFlowConfig::centralized(),
        ControlFlowConfig::faasflow(),
        ControlFlowConfig::sonic(),
        ControlFlowConfig::state_machine(),
    ] {
        let label = cfg.label.as_str();
        let report = run_one(cfg, Arc::clone(&wf), 3);
        assert_eq!(report.primary().completed, 3, "{label} failed");
        assert_eq!(report.engine, label);
    }
}

#[test]
fn centralized_triggering_overhead_is_visible() {
    let cluster = ClusterConfig {
        trace_triggers: true,
        ..ClusterConfig::default()
    };
    let mut world = World::new(cluster);
    let wf_def = fanout_wf(2, 1.0);
    let wf = world.add_workflow(Arc::clone(&wf_def));
    world.submit_request(wf, MB, SimTime::ZERO);
    let mut engine = ControlFlowEngine::new(ControlFlowConfig::centralized(), SpreadPlacement);
    run_to_idle(&mut world, &mut engine);

    // Gap between a predecessor Finished and the successor Ready must be
    // at least the configured 63 ms state-management overhead.
    let trace = world.trigger_trace();
    let start = wf_def.function_by_name("start").unwrap();
    let count0 = wf_def.function_by_name("count_0").unwrap();
    let mut start_fin = None;
    let mut count_ready = None;
    for (t, rec) in trace.iter() {
        if rec.func == start && rec.kind == TriggerKind::Finished {
            start_fin = Some(*t);
        }
        if rec.func == count0 && rec.kind == TriggerKind::Ready && count_ready.is_none() {
            count_ready = Some(*t);
        }
    }
    let gap = count_ready.unwrap().duration_since(start_fin.unwrap());
    assert!(
        gap >= SimDuration::from_millis(63),
        "trigger gap {gap} below configured overhead"
    );
}

#[test]
fn dataflower_beats_control_flow_on_latency() {
    let wf = fanout_wf(4, 4.0);

    let mut df_world = World::new(ClusterConfig::default());
    let id = df_world.add_workflow(Arc::clone(&wf));
    for i in 0..5 {
        df_world.submit_request(id, 4.0 * MB, SimTime::from_secs(3 * i));
    }
    let mut df = DataFlowerEngine::new(DataFlowerConfig::default(), SpreadPlacement);
    let df_report = run(&mut df_world, &mut df, SimTime::from_secs(300));

    for cfg in [ControlFlowConfig::faasflow(), ControlFlowConfig::sonic()] {
        let label = cfg.label.as_str();
        let mut world = World::new(ClusterConfig::default());
        let id = world.add_workflow(Arc::clone(&wf));
        for i in 0..5 {
            world.submit_request(id, 4.0 * MB, SimTime::from_secs(3 * i));
        }
        let mut engine = ControlFlowEngine::new(cfg, SpreadPlacement);
        let report = run(&mut world, &mut engine, SimTime::from_secs(300));
        assert_eq!(report.primary().completed, 5);
        assert!(
            df_report.primary().latency.mean() < report.primary().latency.mean(),
            "DataFlower {:.3}s should beat {label} {:.3}s",
            df_report.primary().latency.mean(),
            report.primary().latency.mean()
        );
    }
}

#[test]
fn breakdown_records_comm_and_comp() {
    let wf = fanout_wf(2, 4.0);
    let mut world = World::new(ClusterConfig::default());
    let id = world.add_workflow(wf);
    world.submit_request(id, 4.0 * MB, SimTime::ZERO);
    let mut engine = ControlFlowEngine::new(ControlFlowConfig::centralized(), SpreadPlacement);
    let report = run_to_idle(&mut world, &mut engine);
    assert_eq!(report.primary().completed, 1);

    let mut comm = 0.0;
    let mut comp = 0.0;
    for (_, b) in engine.breakdown() {
        comm += b.comm.values().iter().sum::<f64>();
        comp += b.comp.values().iter().sum::<f64>();
    }
    assert!(comm > 0.0, "no communication time recorded");
    assert!(comp > 0.0, "no computation time recorded");
    let (mean_op, ops) = engine.comm_time();
    assert!(ops > 0 && mean_op > 0.0);
}

#[test]
fn faasflow_cache_freed_at_request_completion() {
    // Single-node placement → all edges cached in local memory.
    let mut cluster = ClusterConfig::single_node();
    cluster.trace_triggers = false;
    let mut world = World::new(cluster);
    let wf = world.add_workflow(fanout_wf(2, 2.0));
    world.submit_request(wf, 2.0 * MB, SimTime::ZERO);
    let mut engine = ControlFlowEngine::new(
        ControlFlowConfig::faasflow(),
        dataflower_cluster::SingleNodePlacement::default(),
    );
    let report = run_to_idle(&mut world, &mut engine);
    assert_eq!(report.primary().completed, 1);
    assert!(report.cache_mb_s > 0.0, "local cache never populated");
    assert_eq!(
        world.cache_resident_mb(),
        0.0,
        "cache not freed at completion"
    );
}
