//! Criterion micro-benchmarks of the orchestration engines: cost of
//! simulating one workflow request end-to-end, per system, plus a
//! closed-loop burst. These measure the *reproduction's* performance
//! (simulator events per second), complementing the `figures` binary
//! which reproduces the paper's results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataflower_workloads::{Benchmark, Scenario, SystemKind};

fn bench_single_request(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_request");
    group.sample_size(20);
    for sys in [
        SystemKind::DataFlower,
        SystemKind::FaaSFlow,
        SystemKind::Sonic,
        SystemKind::Centralized,
    ] {
        group.bench_with_input(BenchmarkId::new("wc", sys.label()), &sys, |b, sys| {
            b.iter(|| {
                let scenario = Scenario::seeded(5);
                let report = scenario.open_loop(
                    *sys,
                    Benchmark::Wc.workflow(),
                    Benchmark::Wc.default_payload(),
                    30.0,
                    20,
                );
                assert!(report.primary().completed > 0);
                report
            })
        });
    }
    group.finish();
}

fn bench_closed_loop_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("closed_loop_16_clients_60s");
    group.sample_size(10);
    for bench in [Benchmark::Wc, Benchmark::Img] {
        group.bench_with_input(
            BenchmarkId::new("DataFlower", bench.name()),
            &bench,
            |b, bench| {
                b.iter(|| {
                    let scenario = Scenario::seeded(6);
                    scenario.closed_loop(
                        SystemKind::DataFlower,
                        bench.workflow(),
                        bench.default_payload(),
                        16,
                        60,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_single_request, bench_closed_loop_burst);
criterion_main!(benches);
