//! Criterion micro-benchmarks of the substrate data structures: the
//! flow-level network's rate recomputation, the Wait-Match memory, the
//! event queue and the percentile math.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataflower::WaitMatchMemory;
use dataflower_cluster::RequestId;
use dataflower_metrics::Samples;
use dataflower_sim::{EventQueue, FlowNet, SimTime};
use dataflower_workflow::{EdgeId, FnId};

fn bench_flownet(c: &mut Criterion) {
    let mut group = c.benchmark_group("flownet");
    for n_flows in [8usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("start_and_drain", n_flows),
            &n_flows,
            |b, &n| {
                b.iter(|| {
                    let mut net = FlowNet::new();
                    let shared = net.add_link(1e8);
                    let links: Vec<_> = (0..8).map(|_| net.add_link(5e6)).collect();
                    for i in 0..n {
                        net.start_flow(
                            SimTime::ZERO,
                            &[links[i % links.len()], shared],
                            1e6,
                            i as u64,
                        );
                    }
                    let done = net.advance(SimTime::from_secs(10_000));
                    assert_eq!(done.len(), n);
                    done
                })
            },
        );
    }
    group.finish();
}

fn bench_wait_match(c: &mut Criterion) {
    c.bench_function("wait_match_insert_take_1k", |b| {
        b.iter(|| {
            let mut sink = WaitMatchMemory::new();
            for r in 0..100 {
                for e in 0..10 {
                    sink.insert(
                        RequestId::from_index(r),
                        FnId::from_index(e % 4),
                        EdgeId::from_index(e),
                        1024.0,
                        SimTime::ZERO,
                    );
                }
            }
            for r in 0..100 {
                for f in 0..4 {
                    sink.take_inputs(RequestId::from_index(r), FnId::from_index(f));
                }
            }
            assert!(sink.is_empty());
            sink
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_10k_schedule_pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_micros(i * 7919 % 65_536), i);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            assert_eq!(count, 10_000);
            count
        })
    });
}

fn bench_percentiles(c: &mut Criterion) {
    let samples: Samples = (0..10_000).map(|i| ((i * 31) % 997) as f64).collect();
    c.bench_function("samples_p99_10k", |b| b.iter(|| samples.p99()));
}

criterion_group!(
    benches,
    bench_flownet,
    bench_wait_match,
    bench_event_queue,
    bench_percentiles
);
criterion_main!(benches);
