//! Smoke tests of the figure harness: the cheap generators run and emit
//! the expected structure, and unknown ids are rejected helpfully.

use dataflower_bench::figures::{render, ALL_FIGURES};

#[test]
fn fig2a_contains_all_benchmarks_and_shares() {
    let out = render("fig2a").unwrap();
    for b in ["img", "vid", "svd", "wc"] {
        assert!(out.contains(b), "missing {b} in fig2a:\n{out}");
    }
    assert!(out.contains('%'));
}

#[test]
fn fig13_shows_three_systems() {
    let out = render("fig13").unwrap();
    for sys in ["DataFlower", "FaaSFlow", "SONIC"] {
        assert!(out.contains(sys), "missing {sys} in fig13");
    }
    assert!(out.contains("wc_start") && out.contains("wc_merge"));
}

#[test]
fn fig19_reports_reductions() {
    let out = render("fig19").unwrap();
    assert!(out.contains("StateMachine"));
    assert!(out.contains('%'));
}

#[test]
fn unknown_figure_lists_valid_ids() {
    let err = render("fig99").unwrap_err();
    assert!(err.contains("fig99"));
    for id in ALL_FIGURES {
        assert!(err.contains(id), "error should list {id}");
    }
}

#[test]
fn every_listed_figure_is_renderable_id() {
    // Only check the registry wiring (rendering all would be slow here;
    // the `figures all` run in CI/EXPERIMENTS.md covers content).
    assert_eq!(ALL_FIGURES.len(), 14);
    assert!(ALL_FIGURES.starts_with(&["fig2a", "fig2b", "fig2c"]));
    assert_eq!(*ALL_FIGURES.last().unwrap(), "fig19");
}
