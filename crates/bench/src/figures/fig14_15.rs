//! Figure 14 (host cache footprint) and Figure 15 (bursty load).

use dataflower_metrics::{fmt_f, Table};
use dataflower_workloads::{Benchmark, Scenario, SystemKind};

use crate::common::header;

/// Fig. 14: average host memory for caching intermediate data, per
/// request (MB·s). Paper: DataFlower reduces it by 19.1 % (img), 90.2 %
/// (vid), 94.9 % (svd) and 97.5 % (wc) thanks to proactive release +
/// passive expire, vs FaaSFlow's per-request cache lifetime.
pub fn fig14() -> String {
    let mut out = header(
        "Fig 14",
        "host cache usage per request (MB*s): DataFlower vs FaaSFlow",
    );
    for b in Benchmark::ALL {
        out.push_str(&format!("{}:\n", b.name()));
        let mut t = Table::new(vec!["clients", "DataFlower", "FaaSFlow", "reduction"]);
        for clients in [1usize, 2, 4, 8] {
            let mut per_req = [0.0f64; 2];
            for (i, sys) in [SystemKind::DataFlower, SystemKind::FaaSFlow]
                .iter()
                .enumerate()
            {
                let scenario = Scenario::seeded(400 + clients as u64);
                let report =
                    scenario.closed_loop(*sys, b.workflow(), b.default_payload(), clients, 120);
                let n = report.primary().completed.max(1);
                per_req[i] = report.cache_mb_s / n as f64;
            }
            let reduction = if per_req[1] > 0.0 {
                1.0 - per_req[0] / per_req[1]
            } else {
                0.0
            };
            t.row(vec![
                clients.to_string(),
                fmt_f(per_req[0], 3),
                fmt_f(per_req[1], 3),
                format!("{:.1}%", reduction * 100.0),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Fig. 15: the bursty-load experiment — wc jumps from 10 rpm to 100 rpm;
/// ~110 requests over two minutes. Reports the latency CDF (deciles) and
/// standard deviation. Paper: σ ≈ 0.050 (FaaSFlow), 0.053 (DataFlower),
/// 0.155 (SONIC); DataFlower has the lowest mean and p99.
pub fn fig15() -> String {
    let mut out = header(
        "Fig 15",
        "bursty load (wc 10→100 rpm): latency CDF deciles and σ",
    );
    let b = Benchmark::Wc;
    let mut t = Table::new(vec![
        "system", "p10", "p30", "p50", "p70", "p90", "p99", "sigma", "n",
    ]);
    for sys in SystemKind::HEADLINE {
        let scenario = Scenario::seeded(55);
        let report = scenario.bursty(sys, b.workflow(), b.default_payload(), 10.0, 100.0);
        let lat = &report.primary().latency;
        t.row(vec![
            sys.label().into(),
            fmt_f(lat.percentile(0.10), 3),
            fmt_f(lat.percentile(0.30), 3),
            fmt_f(lat.percentile(0.50), 3),
            fmt_f(lat.percentile(0.70), 3),
            fmt_f(lat.percentile(0.90), 3),
            fmt_f(lat.p99(), 3),
            fmt_f(lat.std_dev(), 3),
            lat.len().to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}
