//! Figure 2: characterization of the control-flow paradigm — (a) the
//! communication/computation breakdown and average end-to-end latency,
//! (b) the staggered CPU/network usage timeline, (c) the triggering
//! overhead of the production orchestrator's state machine.

use dataflower_baselines::{ControlFlowConfig, ControlFlowEngine};
use dataflower_cluster::{run_to_idle, ClusterConfig, SpreadPlacement, TriggerKind, World};
use dataflower_metrics::{fmt_f, Table};
use dataflower_sim::SimTime;
use dataflower_workloads::Benchmark;

use crate::common::{header, pct, secs};

/// Fig. 2(a): per-benchmark communication share and average E2E latency
/// under the centralized control-flow orchestrator.
pub fn fig2a() -> String {
    let mut out = header(
        "Fig 2a",
        "control-flow comm/comp breakdown (paper: img 26.0%, vid 49.5%, svd 35.3%, wc 89.2%)",
    );
    let mut t = Table::new(vec!["benchmark", "comm share", "comp share", "avg E2E (s)"]);
    for b in Benchmark::ALL {
        let (share, e2e) = characterize(b);
        t.row(vec![
            b.name().into(),
            pct(share),
            pct(1.0 - share),
            secs(e2e),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Runs solo requests of `b` under the centralized orchestrator and
/// returns `(comm share, mean E2E seconds)`.
pub fn characterize(b: Benchmark) -> (f64, f64) {
    let mut world = World::new(ClusterConfig::default().with_seed(2));
    let id = world.add_workflow(b.workflow());
    for i in 0..3 {
        world.submit_request(id, b.default_payload(), SimTime::from_secs(40 * i));
    }
    let mut engine = ControlFlowEngine::new(ControlFlowConfig::centralized(), SpreadPlacement);
    let report = run_to_idle(&mut world, &mut engine);
    let (mut comm, mut comp) = (0.0, 0.0);
    for (_, fb) in engine.breakdown() {
        comm += fb.comm.values().iter().sum::<f64>();
        comp += fb.comp.values().iter().sum::<f64>();
    }
    (comm / (comm + comp), report.primary().latency.mean())
}

/// Fig. 2(b): CPU vs network usage timeline of one request per benchmark
/// — with the control-flow paradigm the two peaks alternate (Get/Put use
/// the network while the CPU waits, compute leaves the network idle).
pub fn fig2b() -> String {
    let mut out = header(
        "Fig 2b",
        "CPU/network usage timeline under control flow (staggered peaks)",
    );
    for b in Benchmark::ALL {
        let mut cluster = ClusterConfig::default().with_seed(3);
        cluster.trace_usage = true;
        let mut world = World::new(cluster);
        let id = world.add_workflow(b.workflow());
        world.submit_request(id, b.default_payload(), SimTime::ZERO);
        let mut engine = ControlFlowEngine::new(ControlFlowConfig::centralized(), SpreadPlacement);
        run_to_idle(&mut world, &mut engine);

        let trace = world.usage_trace();
        let end = trace.last().map(|(t, _)| *t).unwrap_or(SimTime::ZERO);
        out.push_str(&format!("{}:\n", b.name()));
        let mut t = Table::new(vec!["t (s)", "busy cores", "net (MB/s)"]);
        // Sample ~16 evenly spaced points of the step signal.
        let samples = 16u64;
        let mut idx = 0usize;
        let entries = trace.entries();
        for k in 0..=samples {
            let at = SimTime::from_micros(end.as_micros() * k / samples);
            while idx + 1 < entries.len() && entries[idx + 1].0 <= at {
                idx += 1;
            }
            if entries.is_empty() {
                break;
            }
            let s = entries[idx].1;
            t.row(vec![
                fmt_f(at.as_secs_f64(), 2),
                fmt_f(s.busy_cores, 2),
                fmt_f((s.net_rate / 1e6).max(0.0), 2),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Fig. 2(c): state-management (triggering) overhead between adjacent
/// functions under the centralized orchestrator (paper: 63.3 ms average).
pub fn fig2c() -> String {
    let mut out = header("Fig 2c", "triggering overhead (paper avg ~63 ms)");
    let mut t = Table::new(vec!["benchmark", "avg trigger overhead (ms)", "samples"]);
    let mut grand_sum = 0.0;
    let mut grand_n = 0usize;
    for b in Benchmark::ALL {
        let mut cluster = ClusterConfig::default().with_seed(4);
        cluster.trace_triggers = true;
        let mut world = World::new(cluster);
        let wf = b.workflow();
        let id = world.add_workflow(std::sync::Arc::clone(&wf));
        world.submit_request(id, b.default_payload(), SimTime::ZERO);
        let mut engine = ControlFlowEngine::new(ControlFlowConfig::centralized(), SpreadPlacement);
        run_to_idle(&mut world, &mut engine);

        // Overhead = Ready(f) − max Finished(pred of f).
        let trace = world.trigger_trace();
        let mut finished = std::collections::HashMap::new();
        let mut overheads = Vec::new();
        for (t, rec) in trace.iter() {
            match rec.kind {
                TriggerKind::Finished => {
                    finished.insert(rec.func, *t);
                }
                TriggerKind::Ready => {
                    let preds = wf.predecessors(rec.func);
                    if preds.is_empty() {
                        continue;
                    }
                    if let Some(last) = preds.iter().filter_map(|p| finished.get(p)).max() {
                        overheads.push(t.duration_since(*last).as_millis_f64());
                    }
                }
                TriggerKind::Started => {}
            }
        }
        let avg = overheads.iter().sum::<f64>() / overheads.len().max(1) as f64;
        grand_sum += overheads.iter().sum::<f64>();
        grand_n += overheads.len();
        t.row(vec![
            b.name().into(),
            fmt_f(avg, 1),
            overheads.len().to_string(),
        ]);
    }
    t.row(vec![
        "average".into(),
        fmt_f(grand_sum / grand_n.max(1) as f64, 1),
        grand_n.to_string(),
    ]);
    out.push_str(&t.render());
    out
}
