//! Figure 12 (pressure-aware scaling ablation) and Figure 13 (function
//! triggering timeline on one node).

use dataflower::{DataFlowerConfig, DataFlowerEngine};
use dataflower_baselines::{ControlFlowConfig, ControlFlowEngine};
use dataflower_cluster::{
    run_to_idle, ClusterConfig, Orchestrator, RequestId, SingleNodePlacement, TriggerKind, World,
};
use dataflower_metrics::{fmt_f, Table};
use dataflower_sim::SimTime;
use dataflower_workloads::{Benchmark, Scenario, SystemKind};

use crate::common::header;

/// Fig. 12: closed-loop throughput of DataFlower vs the Non-aware
/// ablation. Paper: similar for img (small intermediate data); large
/// drops for vid/svd/wc without pressure awareness.
pub fn fig12() -> String {
    let mut out = header(
        "Fig 12",
        "pressure-aware scaling ablation: throughput (rpm) vs clients",
    );
    for b in Benchmark::ALL {
        out.push_str(&format!("{}:\n", b.name()));
        let mut t = Table::new(vec!["clients", "DataFlower", "DataFlower-Non-aware"]);
        for &clients in b.fig11_clients() {
            let mut cells = vec![clients.to_string()];
            for sys in [SystemKind::DataFlower, SystemKind::DataFlowerNonAware] {
                let scenario = Scenario::seeded(300 + clients as u64);
                let report =
                    scenario.closed_loop(sys, b.workflow(), b.default_payload(), clients, 180);
                cells.push(fmt_f(report.primary().throughput_rpm, 1));
            }
            t.row(cells);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Fig. 13: triggering timeline of the wc functions when everything runs
/// on a single node (communication via local memory). Paper: DataFlower
/// triggers `count` before `start` completes and `merge` 2 ms after
/// `count`; FaaSFlow lags by 15/6 ms; SONIC far more.
pub fn fig13() -> String {
    let mut out = header(
        "Fig 13",
        "wc triggering timeline on one node (seconds relative to warm request arrival)",
    );
    // The paper's timeline experiment runs in the tens of milliseconds,
    // i.e. with intermediate data small enough for the ≤16 KiB
    // direct-socket path; a 48 KB text (12 KB per count branch) puts the
    // reproduction in the same regime.
    let wc_input_mb = 48.0 / 1024.0;
    type EngineFactory = Box<dyn FnOnce(&mut World) -> Box<dyn Orchestrator>>;
    let systems: Vec<(&str, EngineFactory)> = vec![
        (
            "DataFlower",
            Box::new(|_w: &mut World| {
                Box::new(DataFlowerEngine::new(
                    DataFlowerConfig::default(),
                    SingleNodePlacement::default(),
                )) as Box<dyn Orchestrator>
            }),
        ),
        (
            "FaaSFlow",
            Box::new(|_w: &mut World| {
                Box::new(ControlFlowEngine::new(
                    ControlFlowConfig::faasflow(),
                    SingleNodePlacement::default(),
                )) as Box<dyn Orchestrator>
            }),
        ),
        (
            "SONIC",
            Box::new(|_w: &mut World| {
                Box::new(ControlFlowEngine::new(
                    ControlFlowConfig::sonic(),
                    SingleNodePlacement::default(),
                )) as Box<dyn Orchestrator>
            }),
        ),
    ];
    for (label, make) in systems {
        let mut cluster = ClusterConfig::single_node().with_seed(5);
        cluster.trace_triggers = true;
        let mut world = World::new(cluster);
        let wf = dataflower_workloads::wordcount(dataflower_workloads::WcParams {
            fan_out: 4,
            input_mb: wc_input_mb,
        });
        let id = world.add_workflow(std::sync::Arc::clone(&wf));
        let payload = wc_input_mb * 1024.0 * 1024.0;
        // First request warms the containers; the second is measured.
        world.submit_request(id, payload, SimTime::ZERO);
        world.submit_request(id, payload, SimTime::from_secs(30));
        let mut engine = make(&mut world);
        run_to_idle(&mut world, &mut *engine);

        let warm_req = RequestId::from_index(1);
        let arrival = world.request(warm_req).arrived;
        out.push_str(&format!("{label}:\n"));
        let mut t = Table::new(vec!["function", "started (s)", "finished (s)"]);
        let interesting = ["wc_start", "wc_count_0", "wc_merge"];
        for name in interesting {
            let f = wf.function_by_name(name).expect("wc function");
            let mut started = None;
            let mut finished = None;
            for (ts, rec) in world.trigger_trace().iter() {
                if rec.req == warm_req && rec.func == f {
                    match rec.kind {
                        TriggerKind::Started if started.is_none() => started = Some(*ts),
                        TriggerKind::Finished => finished = Some(*ts),
                        _ => {}
                    }
                }
            }
            t.row(vec![
                name.into(),
                started
                    .map(|s| fmt_f(s.duration_since(arrival).as_secs_f64(), 3))
                    .unwrap_or_else(|| "-".into()),
                finished
                    .map(|s| fmt_f(s.duration_since(arrival).as_secs_f64(), 3))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}
