//! Figures 16 and 17: adaptiveness sweeps (fan-out, input size) and
//! container scale-up.

use dataflower_cluster::ContainerSpec;
use dataflower_metrics::{fmt_f, Table};
use dataflower_workloads::{wordcount, Scenario, SystemKind, WcParams};

use crate::common::header;

const WC_SWEEP_INPUT_MB: f64 = 4.0;

/// Fig. 16(a): wc average latency and peak throughput with 2–16 fan-out
/// branches at a fixed 4 MB input. Paper: DataFlower gains grow with the
/// branch count (data-availability triggering exploits the parallelism).
pub fn fig16a() -> String {
    let mut out = header(
        "Fig 16a",
        "wc vs fan-out (4 MB input): avg latency (s) and throughput (rpm)",
    );
    let mut t = Table::new(vec![
        "fan-out",
        "DF lat",
        "FF lat",
        "SONIC lat",
        "DF rpm",
        "FF rpm",
        "SONIC rpm",
    ]);
    for fan_out in [2usize, 4, 8, 12, 16] {
        let wf = wordcount(WcParams {
            fan_out,
            input_mb: WC_SWEEP_INPUT_MB,
        });
        let payload = WC_SWEEP_INPUT_MB * 1024.0 * 1024.0;
        let mut lat = Vec::new();
        let mut rpm = Vec::new();
        for sys in SystemKind::HEADLINE {
            let scenario = Scenario::seeded(500 + fan_out as u64);
            let open = scenario.open_loop(sys, std::sync::Arc::clone(&wf), payload, 20.0, 60);
            lat.push(fmt_f(open.primary().latency.mean(), 3));
            let closed = scenario.closed_loop(sys, std::sync::Arc::clone(&wf), payload, 16, 180);
            rpm.push(fmt_f(closed.primary().throughput_rpm, 1));
        }
        t.row(vec![
            format!("{fan_out}x"),
            lat[0].clone(),
            lat[1].clone(),
            lat[2].clone(),
            rpm[0].clone(),
            rpm[1].clone(),
            rpm[2].clone(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Fig. 16(b): wc throughput with 1–16 MB inputs at 4 fan-out branches.
/// Paper: DataFlower's edge shrinks as inputs grow (compute becomes the
/// bottleneck): +91.8 %/+44.9 % at 1 MB down to +29.5 %/+14.5 % at 16 MB.
pub fn fig16b() -> String {
    let mut out = header(
        "Fig 16b",
        "wc throughput (rpm) vs input size (4 fan-out branches)",
    );
    let mut t = Table::new(vec![
        "input",
        "DataFlower",
        "FaaSFlow",
        "SONIC",
        "DF/FF",
        "DF/SONIC",
    ]);
    for input_mb in [1.0f64, 2.0, 4.0, 8.0, 16.0] {
        let wf = wordcount(WcParams {
            fan_out: 4,
            input_mb,
        });
        let payload = input_mb * 1024.0 * 1024.0;
        let mut rpm = Vec::new();
        for sys in SystemKind::HEADLINE {
            let scenario = Scenario::seeded(600 + input_mb as u64);
            let closed = scenario.closed_loop(sys, std::sync::Arc::clone(&wf), payload, 16, 180);
            rpm.push(closed.primary().throughput_rpm);
        }
        t.row(vec![
            format!("{input_mb:.0}M"),
            fmt_f(rpm[0], 1),
            fmt_f(rpm[1], 1),
            fmt_f(rpm[2], 1),
            fmt_f(rpm[0] / rpm[1].max(1e-9), 2),
            fmt_f(rpm[0] / rpm[2].max(1e-9), 2),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Fig. 17: scaling containers up (128–640 MB; CPU and bandwidth scale
/// with memory). Paper: DataFlower and SONIC scale nearly linearly;
/// FaaSFlow is capped by backend storage; at 640 MB DataFlower beats
/// them by 148.4 % and 11.1 %.
pub fn fig17() -> String {
    let mut out = header(
        "Fig 17",
        "wc (4 MB, 8 branches) vs container size: avg latency (s) and throughput (rpm)",
    );
    let wf = wordcount(WcParams {
        fan_out: 8,
        input_mb: 4.0,
    });
    let payload = 4.0 * 1024.0 * 1024.0;
    let mut t = Table::new(vec![
        "container",
        "DF lat",
        "FF lat",
        "SONIC lat",
        "DF rpm",
        "FF rpm",
        "SONIC rpm",
    ]);
    for mem in [128u32, 256, 384, 512, 640] {
        let mut lat = Vec::new();
        let mut rpm = Vec::new();
        for sys in SystemKind::HEADLINE {
            let mut scenario = Scenario::seeded(700 + mem as u64);
            scenario.container_spec = ContainerSpec::with_memory_mb(mem);
            let open = scenario.open_loop(sys, std::sync::Arc::clone(&wf), payload, 20.0, 60);
            lat.push(fmt_f(open.primary().latency.mean(), 3));
            let closed = scenario.closed_loop(sys, std::sync::Arc::clone(&wf), payload, 16, 180);
            rpm.push(fmt_f(closed.primary().throughput_rpm, 1));
        }
        t.row(vec![
            format!("{mem}MB"),
            lat[0].clone(),
            lat[1].clone(),
            lat[2].clone(),
            rpm[0].clone(),
            rpm[1].clone(),
            rpm[2].clone(),
        ]);
    }
    out.push_str(&t.render());
    out
}
