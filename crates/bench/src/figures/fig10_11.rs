//! Figures 10 and 11: the headline latency/memory and throughput
//! comparisons across DataFlower, FaaSFlow and SONIC.

use dataflower_metrics::{fmt_f, Table};
use dataflower_workloads::{Benchmark, Scenario, SystemKind};

use crate::common::{header, latency_cell, memory_cell};

/// Fig. 10: end-to-end latency and memory GB·s at increasing open-loop
/// load (asynchronous invocation pattern). Paper headline: DataFlower
/// cuts p99 by 5.7–35.4 % vs FaaSFlow and 8.9–29.2 % vs SONIC, and
/// memory by 19.1–69.3 % / 7.4–64.1 %.
pub fn fig10() -> String {
    let mut out = header(
        "Fig 10",
        "open-loop E2E latency (mean/p99 s) and memory (GB*s) vs load",
    );
    for b in Benchmark::ALL {
        out.push_str(&format!(
            "{} (payload {:.1} MB):\n",
            b.name(),
            b.default_payload() / (1024.0 * 1024.0)
        ));
        let mut t = Table::new(vec![
            "rpm",
            "DataFlower lat",
            "FaaSFlow lat",
            "SONIC lat",
            "DF mem",
            "FF mem",
            "SONIC mem",
        ]);
        for &rpm in b.fig10_rpms() {
            let mut lat = Vec::new();
            let mut mem = Vec::new();
            for sys in SystemKind::HEADLINE {
                let scenario = Scenario::seeded(100 + rpm as u64);
                let report = scenario.open_loop(sys, b.workflow(), b.default_payload(), rpm, 60);
                lat.push(latency_cell(report.primary()));
                mem.push(memory_cell(&report));
            }
            t.row(vec![
                format!("{rpm:.0}"),
                lat[0].clone(),
                lat[1].clone(),
                lat[2].clone(),
                mem[0].clone(),
                mem[1].clone(),
                mem[2].clone(),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Fig. 11: peak throughput under closed-loop (synchronous) clients.
/// Paper headline: DataFlower reaches 1.03–3.8× FaaSFlow's and
/// 1.29–2.42× SONIC's peak throughput; svd fails with SONIC at ≥ 20
/// clients.
pub fn fig11() -> String {
    let mut out = header("Fig 11", "closed-loop throughput (rpm) vs clients");
    for b in Benchmark::ALL {
        out.push_str(&format!("{}:\n", b.name()));
        let mut t = Table::new(vec!["clients", "DataFlower", "FaaSFlow", "SONIC"]);
        let mut peaks = [0.0f64; 3];
        for &clients in b.fig11_clients() {
            let mut cells = vec![clients.to_string()];
            for (i, sys) in SystemKind::HEADLINE.iter().enumerate() {
                let scenario = Scenario::seeded(200 + clients as u64);
                let report =
                    scenario.closed_loop(*sys, b.workflow(), b.default_payload(), clients, 180);
                let stats = report.primary();
                let rpm = stats.throughput_rpm;
                peaks[i] = peaks[i].max(rpm);
                if stats.completed == 0 {
                    cells.push("FAIL".to_owned());
                } else {
                    cells.push(fmt_f(rpm, 1));
                }
            }
            t.row(cells);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "peak: DataFlower {} vs FaaSFlow {} ({}x) vs SONIC {} ({}x)\n\n",
            fmt_f(peaks[0], 1),
            fmt_f(peaks[1], 1),
            fmt_f(peaks[0] / peaks[1].max(1e-9), 2),
            fmt_f(peaks[2], 1),
            fmt_f(peaks[0] / peaks[2].max(1e-9), 2),
        ));
    }
    out
}
