//! One generator per figure of the paper's evaluation (§3 and §9).

mod fig02;
mod fig10_11;
mod fig12_13;
mod fig14_15;
mod fig16_17;
mod fig18_19;

pub use fig02::{characterize, fig2a, fig2b, fig2c};
pub use fig10_11::{fig10, fig11};
pub use fig12_13::{fig12, fig13};
pub use fig14_15::{fig14, fig15};
pub use fig16_17::{fig16a, fig16b, fig17};
pub use fig18_19::{fig18, fig19};

/// Every figure id accepted by the `figures` binary, in paper order.
pub const ALL_FIGURES: &[&str] = &[
    "fig2a", "fig2b", "fig2c", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16a",
    "fig16b", "fig17", "fig18", "fig19",
];

/// Renders the figure with the given id.
///
/// # Errors
///
/// Returns an error message listing valid ids when `id` is unknown.
pub fn render(id: &str) -> Result<String, String> {
    match id {
        "fig2a" => Ok(fig2a()),
        "fig2b" => Ok(fig2b()),
        "fig2c" => Ok(fig2c()),
        "fig10" => Ok(fig10()),
        "fig11" => Ok(fig11()),
        "fig12" => Ok(fig12()),
        "fig13" => Ok(fig13()),
        "fig14" => Ok(fig14()),
        "fig15" => Ok(fig15()),
        "fig16a" => Ok(fig16a()),
        "fig16b" => Ok(fig16b()),
        "fig17" => Ok(fig17()),
        "fig18" => Ok(fig18()),
        "fig19" => Ok(fig19()),
        other => Err(format!(
            "unknown figure `{other}`; valid ids: {}",
            ALL_FIGURES.join(", ")
        )),
    }
}
