//! Figure 18 (co-locating all four benchmarks) and Figure 19 (stateful
//! state-machine communication vs DataFlower streaming).

use dataflower::{DataFlowerConfig, DataFlowerEngine};
use dataflower_baselines::{ControlFlowConfig, ControlFlowEngine};
use dataflower_cluster::{run_to_idle, ClusterConfig, SpreadPlacement, World};
use dataflower_metrics::{fmt_f, Table};
use dataflower_sim::SimTime;
use dataflower_workloads::{Benchmark, Scenario, SystemKind};

use crate::common::{header, latency_cell};

/// Per-benchmark base open-loop rates (rpm) for the co-location levels.
fn base_rates() -> [(Benchmark, f64); 4] {
    [
        (Benchmark::Img, 12.0),
        (Benchmark::Vid, 4.0),
        (Benchmark::Svd, 8.0),
        (Benchmark::Wc, 40.0),
    ]
}

/// Fig. 18: all four benchmarks co-run on the three worker nodes at
/// increasing load. Paper: DataFlower is the fastest in every case;
/// FaaSFlow and SONIC fail at "Ultra"; no benchmark degrades more than
/// 2× under DataFlower.
pub fn fig18() -> String {
    let mut out = header(
        "Fig 18",
        "co-located benchmarks: mean/p99 latency (s) per load level",
    );
    let levels: [(&str, f64); 4] = [("Low", 1.0), ("Mid", 2.0), ("High", 3.0), ("Ultra", 5.0)];
    for sys in SystemKind::HEADLINE {
        out.push_str(&format!("{}:\n", sys.label()));
        let mut t = Table::new(vec!["level", "img", "vid", "svd", "wc"]);
        // Solo: each benchmark alone at its base rate.
        let mut solo_cells = vec!["Solo".to_owned()];
        for (b, rpm) in base_rates() {
            let scenario = Scenario::seeded(800);
            let report = scenario.open_loop(sys, b.workflow(), b.default_payload(), rpm, 60);
            solo_cells.push(latency_cell(report.primary()));
        }
        t.row(solo_cells);
        for (label, mult) in levels {
            let scenario = Scenario::seeded(801);
            let loads: Vec<_> = base_rates()
                .iter()
                .map(|(b, rpm)| (b.workflow(), b.default_payload(), rpm * mult))
                .collect();
            let report = scenario.colocated(sys, &loads, 60);
            let mut cells = vec![label.to_owned()];
            for (b, _) in base_rates() {
                cells.push(latency_cell(
                    report.workflow(b.name()).expect("benchmark present"),
                ));
            }
            t.row(cells);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Fig. 19: function-to-function communication time with a traditional
/// state machine (stateful functions, unlimited context cache) vs
/// DataFlower's streaming pipe connectors. Paper: up to 47.6 % lower with
/// DataFlower.
pub fn fig19() -> String {
    let mut out = header(
        "Fig 19",
        "stateful data-plane time per request (ms): state machine vs DataFlower",
    );
    // Compared quantity: total data-plane time spent moving intermediate
    // data, per request. The state machine pays the double transfer
    // (function → state machine → function); DataFlower streams once
    // through a pipe connector.
    let mut t = Table::new(vec!["benchmark", "StateMachine", "DataFlower", "reduction"]);
    for b in Benchmark::ALL {
        // State machine deployment.
        let mut world = World::new(ClusterConfig::default().with_seed(6));
        let id = world.add_workflow(b.workflow());
        for i in 0..3 {
            world.submit_request(id, b.default_payload(), SimTime::from_secs(40 * i));
        }
        let mut sm = ControlFlowEngine::new(ControlFlowConfig::state_machine(), SpreadPlacement);
        let sm_report = run_to_idle(&mut world, &mut sm);
        let (sm_mean, sm_ops) = sm.comm_time();
        let sm_per_req = sm_mean * sm_ops as f64 / sm_report.primary().completed.max(1) as f64;

        // DataFlower streaming pipes.
        let mut world = World::new(ClusterConfig::default().with_seed(6));
        let id = world.add_workflow(b.workflow());
        for i in 0..3 {
            world.submit_request(id, b.default_payload(), SimTime::from_secs(40 * i));
        }
        let mut df = DataFlowerEngine::new(DataFlowerConfig::default(), SpreadPlacement);
        let df_report = run_to_idle(&mut world, &mut df);
        let (df_mean, df_ops) = df.comm_time();
        let df_per_req = df_mean * df_ops as f64 / df_report.primary().completed.max(1) as f64;

        t.row(vec![
            b.name().into(),
            fmt_f(sm_per_req * 1e3, 1),
            fmt_f(df_per_req * 1e3, 1),
            format!("{:.1}%", (1.0 - df_per_req / sm_per_req.max(1e-12)) * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("(ms of data-plane transfer time per request)\n");
    out
}
