//! A small median-of-K wall-clock timing harness.
//!
//! Std-only replacement for the previous criterion benches, in line with
//! the workspace's offline dependency policy. Each measurement runs the
//! closure once to warm up, then `runs` timed iterations, and reports the
//! median (robust to scheduler noise), minimum and maximum.
//!
//! Results serialize as one JSON object per line (see
//! [`TimingResult::to_json_line`]) so downstream tooling can diff runs
//! with standard line-oriented tools.

use std::time::Instant;

/// Outcome of one benchmark: wall-clock statistics over `runs` iterations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingResult {
    /// Benchmark family, e.g. `engines` or `substrates`.
    pub group: String,
    /// Specific case, e.g. `single_request/wc/DataFlower`.
    pub name: String,
    /// Number of timed iterations (excludes the warm-up run).
    pub runs: usize,
    /// Median iteration time in nanoseconds.
    pub median_ns: u128,
    /// Fastest iteration in nanoseconds.
    pub min_ns: u128,
    /// Slowest iteration in nanoseconds.
    pub max_ns: u128,
    /// 99th-percentile latency in nanoseconds, when the benchmark
    /// measures a latency distribution rather than repeated wall-clock
    /// iterations. `None` for the median-of-K micro-benchmarks (3–9
    /// iterations cannot support a p99); `Some` for the open-loop
    /// loadgen rows, whose tail the regression gate compares.
    pub p99_ns: Option<u128>,
}

impl TimingResult {
    /// One self-contained JSON object, no trailing newline.
    ///
    /// # Examples
    ///
    /// ```
    /// use dataflower_bench::timing::time;
    ///
    /// let r = time("demo", "noop", 3, || ());
    /// let line = r.to_json_line();
    /// assert!(line.starts_with("{\"group\":\"demo\",\"name\":\"noop\""));
    /// assert!(!line.contains('\n'));
    /// ```
    pub fn to_json_line(&self) -> String {
        let p99 = self
            .p99_ns
            .map(|p| format!(",\"p99_ns\":{p}"))
            .unwrap_or_default();
        format!(
            "{{\"group\":\"{}\",\"name\":\"{}\",\"runs\":{},\"median_ns\":{},\"min_ns\":{},\"max_ns\":{}{p99},\"median_ms\":{:.6}}}",
            escape(&self.group),
            escape(&self.name),
            self.runs,
            self.median_ns,
            self.min_ns,
            self.max_ns,
            self.median_ns as f64 / 1e6,
        )
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Times `runs` iterations of `f` (after one warm-up call) and returns the
/// median/min/max wall-clock statistics.
///
/// The closure's return value is passed through [`std::hint::black_box`]
/// so the optimizer cannot delete the measured work.
///
/// # Panics
///
/// Panics if `runs` is zero.
pub fn time<T>(group: &str, name: &str, runs: usize, mut f: impl FnMut() -> T) -> TimingResult {
    assert!(runs > 0, "need at least one timed run");
    std::hint::black_box(f());
    let mut samples: Vec<u128> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    TimingResult {
        group: group.to_owned(),
        name: name.to_owned(),
        runs,
        median_ns: samples[runs / 2],
        min_ns: samples[0],
        max_ns: samples[runs - 1],
        p99_ns: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_within_bounds() {
        let r = time("g", "sleepless", 5, || {
            std::hint::black_box((0..1000u64).sum::<u64>())
        });
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert_eq!(r.runs, 5);
    }

    #[test]
    fn json_line_is_parseable_shape() {
        let r = TimingResult {
            group: "engines".into(),
            name: "a \"quoted\" case".into(),
            runs: 3,
            median_ns: 1_500_000,
            min_ns: 1_000_000,
            max_ns: 2_000_000,
            p99_ns: None,
        };
        let line = r.to_json_line();
        assert!(line.contains("\"median_ns\":1500000"));
        assert!(line.contains("\\\"quoted\\\""));
        assert!(line.contains("\"median_ms\":1.5"));
        assert!(!line.contains("p99_ns"));
        let with_tail = TimingResult {
            p99_ns: Some(9_000_000),
            ..r
        };
        assert!(with_tail.to_json_line().contains("\"p99_ns\":9000000"));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_runs_rejected() {
        time("g", "n", 0, || ());
    }
}
