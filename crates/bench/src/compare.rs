//! Bench-regression comparison: diff a run of the `bench` binary against
//! a committed baseline (`BENCH_BASELINE.json`, one JSON object per
//! line) and report per-benchmark deltas.
//!
//! The gate is deliberately loose: absolute numbers vary across hosts,
//! so CI only fails on *large* regressions (the committed `ci.sh` step
//! uses a +100 % tolerance — fail only when a benchmark got more than
//! 2× slower). The full delta table is always printed, so smaller
//! drifts stay visible in the log without going red.

use dataflower_workflow::json::parse;

use crate::timing::TimingResult;

/// One benchmark of the committed baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// `group/name` identifier, matching the bench binary's output.
    pub id: String,
    /// Median wall-clock time recorded in the baseline.
    pub median_ns: u128,
}

/// Parses a baseline file: one JSON object per non-empty line, each with
/// `group`, `name` and `median_ns` fields (exactly what the `bench`
/// binary prints).
///
/// # Errors
///
/// Returns a message naming the offending line when a line is not a
/// JSON object or lacks the required fields.
///
/// # Examples
///
/// ```
/// use dataflower_bench::compare::parse_baseline;
///
/// let entries = parse_baseline(
///     "{\"group\":\"engines\",\"name\":\"wc\",\"runs\":3,\"median_ns\":1500000}\n",
/// )
/// .unwrap();
/// assert_eq!(entries[0].id, "engines/wc");
/// assert_eq!(entries[0].median_ns, 1_500_000);
/// ```
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let v = parse(line).map_err(|e| format!("baseline line {lineno}: {e}"))?;
        let field = |key: &str| {
            v.get(key)
                .ok_or_else(|| format!("baseline line {lineno}: missing `{key}`"))
        };
        let group = field("group")?
            .as_str()
            .ok_or_else(|| format!("baseline line {lineno}: `group` is not a string"))?;
        let name = field("name")?
            .as_str()
            .ok_or_else(|| format!("baseline line {lineno}: `name` is not a string"))?;
        let median = field("median_ns")?
            .as_f64()
            .ok_or_else(|| format!("baseline line {lineno}: `median_ns` is not a number"))?;
        out.push(BaselineEntry {
            id: format!("{group}/{name}"),
            median_ns: median.max(0.0) as u128,
        });
    }
    Ok(out)
}

/// One benchmark present in both the baseline and the current run.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// `group/name` identifier.
    pub id: String,
    /// Baseline median.
    pub baseline_ns: u128,
    /// This run's median.
    pub current_ns: u128,
    /// Relative change in percent (positive = slower than baseline).
    pub delta_pct: f64,
}

impl Delta {
    /// True when this benchmark slowed down past `tolerance_pct`.
    pub fn regressed(&self, tolerance_pct: f64) -> bool {
        self.delta_pct > tolerance_pct
    }
}

/// Outcome of diffing a run against a baseline.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Benchmarks present on both sides, in current-run order.
    pub deltas: Vec<Delta>,
    /// Benchmarks this run produced that the baseline lacks (new cases).
    /// **Warned about by name, never a failure** — but never silent
    /// either: an un-gated benchmark is invisible to the regression
    /// gate until its entry lands in `BENCH_BASELINE.json`.
    pub new_benchmarks: Vec<String>,
    /// Baseline benchmarks this run did not produce — a renamed/removed
    /// group, or a filtered invocation. **Warned about, never a
    /// failure**: adding or removing bench groups must not break the
    /// gate.
    pub missing: Vec<String>,
}

impl Comparison {
    /// The deltas exceeding `tolerance_pct`, i.e. the failures.
    pub fn regressions(&self, tolerance_pct: f64) -> Vec<&Delta> {
        self.deltas
            .iter()
            .filter(|d| d.regressed(tolerance_pct))
            .collect()
    }

    /// Warning lines for the two kinds of baseline drift — baseline
    /// entries this run did not produce, and benchmarks this run
    /// produced that the baseline does not gate. Printed to stderr by
    /// the bench binary so a stale baseline is visible (by name, not as
    /// a silent skip) without failing the gate.
    pub fn warnings(&self) -> Vec<String> {
        self.missing
            .iter()
            .map(|id| {
                format!(
                    "warning: baseline entry `{id}` missing from this run \
                     (renamed, removed, or filtered out); not counted as a regression"
                )
            })
            .chain(self.new_benchmarks.iter().map(|id| {
                format!(
                    "warning: benchmark `{id}` has no baseline entry — it is NOT \
                     gated for regressions; add it to BENCH_BASELINE.json"
                )
            }))
            .collect()
    }
}

/// Per-group aggregation of a [`Comparison`] — one row of the CI
/// step-summary table.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// Benchmark group (the part before the first `/` of the id).
    pub group: String,
    /// Benchmarks compared against the baseline.
    pub compared: usize,
    /// How many of them regressed past the tolerance.
    pub regressions: usize,
    /// Worst (most positive) delta in percent.
    pub worst_delta_pct: f64,
    /// Mean delta in percent.
    pub mean_delta_pct: f64,
    /// Geometric-mean delta in percent: `exp(mean(ln(current/baseline)))
    /// − 1`. Unlike the arithmetic mean, one outlier cannot mask (or
    /// fake) a group-wide drift, so this is the at-a-glance figure of
    /// the CI step summary.
    pub geomean_delta_pct: f64,
    /// Benchmarks new in this run (no baseline entry).
    pub new_benchmarks: usize,
    /// Baseline entries missing from this run.
    pub missing: usize,
}

/// Aggregates a comparison per benchmark group, in first-seen order.
pub fn group_summaries(cmp: &Comparison, tolerance_pct: f64) -> Vec<GroupSummary> {
    let group_of = |id: &str| id.split('/').next().unwrap_or(id).to_owned();
    let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let mut out: Vec<GroupSummary> = Vec::new();
    fn slot<'a>(
        index: &mut std::collections::HashMap<String, usize>,
        out: &'a mut Vec<GroupSummary>,
        group: String,
    ) -> &'a mut GroupSummary {
        let i = *index.entry(group.clone()).or_insert_with(|| {
            out.push(GroupSummary {
                group,
                compared: 0,
                regressions: 0,
                worst_delta_pct: 0.0,
                mean_delta_pct: 0.0,
                geomean_delta_pct: 0.0,
                new_benchmarks: 0,
                missing: 0,
            });
            out.len() - 1
        });
        &mut out[i]
    }
    for d in &cmp.deltas {
        let s = slot(&mut index, &mut out, group_of(&d.id));
        s.compared += 1;
        s.mean_delta_pct += d.delta_pct;
        // Accumulate ln(current/baseline); finalized into the geometric
        // mean below. delta_pct > −100 by construction (current ≥ 0 and
        // baseline > 0), but a zero-time current run would make the
        // ratio 0 — clamp so one degenerate sample cannot collapse the
        // whole group to −100 %.
        s.geomean_delta_pct += (1.0 + d.delta_pct / 100.0).max(1e-9).ln();
        s.worst_delta_pct = if s.compared == 1 {
            d.delta_pct
        } else {
            s.worst_delta_pct.max(d.delta_pct)
        };
        if d.regressed(tolerance_pct) {
            s.regressions += 1;
        }
    }
    for id in &cmp.new_benchmarks {
        slot(&mut index, &mut out, group_of(id)).new_benchmarks += 1;
    }
    for id in &cmp.missing {
        slot(&mut index, &mut out, group_of(id)).missing += 1;
    }
    for s in &mut out {
        if s.compared > 0 {
            s.mean_delta_pct /= s.compared as f64;
            s.geomean_delta_pct = ((s.geomean_delta_pct / s.compared as f64).exp() - 1.0) * 100.0;
        }
    }
    out
}

/// Diffs `current` against `baseline` by `group/name` identity.
pub fn compare(baseline: &[BaselineEntry], current: &[TimingResult]) -> Comparison {
    let mut cmp = Comparison::default();
    let mut seen = std::collections::HashSet::new();
    for r in current {
        let id = format!("{}/{}", r.group, r.name);
        seen.insert(id.clone());
        match baseline.iter().find(|b| b.id == id) {
            Some(b) if b.median_ns > 0 => {
                let delta_pct =
                    (r.median_ns as f64 - b.median_ns as f64) / b.median_ns as f64 * 100.0;
                cmp.deltas.push(Delta {
                    id,
                    baseline_ns: b.median_ns,
                    current_ns: r.median_ns,
                    delta_pct,
                });
            }
            _ => cmp.new_benchmarks.push(id),
        }
    }
    for b in baseline {
        if !seen.contains(&b.id) {
            cmp.missing.push(b.id.clone());
        }
    }
    cmp
}

/// Renders the per-benchmark delta table plus new/missing notes — the
/// output of the CI bench-regression step.
pub fn render(cmp: &Comparison, tolerance_pct: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== bench regression report (fails above +{tolerance_pct:.0}%) ==\n"
    ));
    let width = cmp.deltas.iter().map(|d| d.id.len()).max().unwrap_or(0);
    for d in &cmp.deltas {
        let verdict = if d.regressed(tolerance_pct) {
            "REGRESSION"
        } else {
            "ok"
        };
        out.push_str(&format!(
            "  {:width$}  {:>9.3} ms -> {:>9.3} ms  {:>+8.1}%  {}\n",
            d.id,
            d.baseline_ns as f64 / 1e6,
            d.current_ns as f64 / 1e6,
            d.delta_pct,
            verdict,
        ));
    }
    for id in &cmp.new_benchmarks {
        out.push_str(&format!("  {id}  (new: no baseline entry)\n"));
    }
    for id in &cmp.missing {
        out.push_str(&format!(
            "  {id}  (warning: in baseline, not in this run)\n"
        ));
    }
    let n = cmp.regressions(tolerance_pct).len();
    out.push_str(&format!(
        "{} benchmark(s) compared, {} regression(s) past tolerance\n",
        cmp.deltas.len(),
        n
    ));
    out
}

/// Renders the per-group delta summary as a GitHub-flavoured markdown
/// table — what the bench CI job appends to `$GITHUB_STEP_SUMMARY`.
pub fn render_markdown(cmp: &Comparison, tolerance_pct: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "### Bench regression report (fails above +{tolerance_pct:.0}%)\n\n"
    ));
    out.push_str(
        "| group | compared | geomean Δ | mean Δ | worst Δ | regressions | new | missing |\n",
    );
    out.push_str("|---|---:|---:|---:|---:|---:|---:|---:|\n");
    let groups = group_summaries(cmp, tolerance_pct);
    for g in &groups {
        out.push_str(&format!(
            "| {} | {} | {:+.1}% | {:+.1}% | {:+.1}% | {} | {} | {} |\n",
            g.group,
            g.compared,
            g.geomean_delta_pct,
            g.mean_delta_pct,
            g.worst_delta_pct,
            g.regressions,
            g.new_benchmarks,
            g.missing,
        ));
    }
    // One at-a-glance line per group: the geomean delta is the figure a
    // reviewer scans for in `$GITHUB_STEP_SUMMARY`.
    for g in &groups {
        if g.compared > 0 {
            out.push_str(&format!(
                "\n**{}** geomean Δ: {:+.1}% across {} benchmark(s).",
                g.group, g.geomean_delta_pct, g.compared,
            ));
        }
    }
    if groups.iter().any(|g| g.compared > 0) {
        out.push('\n');
    }
    let n = cmp.regressions(tolerance_pct).len();
    out.push_str(&format!(
        "\n{} benchmark(s) compared, **{} regression(s)** past tolerance.\n",
        cmp.deltas.len(),
        n
    ));
    if !cmp.missing.is_empty() {
        out.push_str(&format!(
            "\n⚠ {} baseline entr{} missing from this run (warned, not failed):\n",
            cmp.missing.len(),
            if cmp.missing.len() == 1 { "y" } else { "ies" },
        ));
        for id in &cmp.missing {
            out.push_str(&format!("- `{id}`\n"));
        }
    }
    if !cmp.new_benchmarks.is_empty() {
        // Named, not just counted: a benchmark without a baseline entry
        // is invisible to the gate, and a reviewer scanning the step
        // summary must see *which* ones run un-gated.
        out.push_str(&format!(
            "\n⚠ {} benchmark(s) in this run have no baseline entry and are \
             **not gated** — add them to `BENCH_BASELINE.json`:\n",
            cmp.new_benchmarks.len(),
        ));
        for id in &cmp.new_benchmarks {
            out.push_str(&format!("- `{id}`\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(group: &str, name: &str, median_ns: u128) -> TimingResult {
        TimingResult {
            group: group.into(),
            name: name.into(),
            runs: 3,
            median_ns,
            min_ns: median_ns,
            max_ns: median_ns,
        }
    }

    #[test]
    fn baseline_roundtrips_through_bench_output() {
        let line = result("engines", "wc", 1_500_000).to_json_line();
        let entries = parse_baseline(&format!("{line}\n{line}\n\n")).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, "engines/wc");
        assert_eq!(entries[0].median_ns, 1_500_000);
    }

    #[test]
    fn malformed_baseline_is_rejected_with_line_number() {
        let err = parse_baseline("{\"group\":\"g\"}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("name"), "{err}");
        assert!(parse_baseline("not json\n").is_err());
    }

    #[test]
    fn deltas_and_verdicts() {
        let baseline = vec![
            BaselineEntry {
                id: "g/fast".into(),
                median_ns: 1_000_000,
            },
            BaselineEntry {
                id: "g/slow".into(),
                median_ns: 1_000_000,
            },
            BaselineEntry {
                id: "g/gone".into(),
                median_ns: 5,
            },
        ];
        let current = vec![
            result("g", "fast", 900_000),
            result("g", "slow", 2_500_000),
            result("g", "fresh", 1),
        ];
        let cmp = compare(&baseline, &current);
        assert_eq!(cmp.deltas.len(), 2);
        assert!(!cmp.deltas[0].regressed(100.0));
        assert!(cmp.deltas[1].regressed(100.0)); // +150% > +100%
        assert!(!cmp.deltas[1].regressed(200.0));
        assert_eq!(cmp.new_benchmarks, vec!["g/fresh".to_string()]);
        assert_eq!(cmp.missing, vec!["g/gone".to_string()]);
        let report = render(&cmp, 100.0);
        assert!(report.contains("REGRESSION"));
        assert!(report.contains("1 regression(s)"));
    }

    #[test]
    fn missing_baseline_entries_warn_but_never_fail() {
        // A baseline that is a strict superset of the run: every extra
        // entry is a warning, zero regressions, so the gate stays green.
        let baseline = vec![
            BaselineEntry {
                id: "g/kept".into(),
                median_ns: 1_000_000,
            },
            BaselineEntry {
                id: "g/removed".into(),
                median_ns: 1_000_000,
            },
            BaselineEntry {
                id: "old_group/gone".into(),
                median_ns: 1_000_000,
            },
        ];
        let current = vec![result("g", "kept", 1_100_000)];
        let cmp = compare(&baseline, &current);
        assert_eq!(cmp.missing.len(), 2);
        assert!(cmp.regressions(100.0).is_empty(), "missing must not fail");
        let warnings = cmp.warnings();
        assert_eq!(warnings.len(), 2);
        assert!(warnings[0].contains("warning") && warnings[0].contains("g/removed"));
        assert!(render(&cmp, 100.0).contains("warning: in baseline, not in this run"));
    }

    #[test]
    fn ungated_benchmarks_are_named_in_warnings_and_markdown() {
        // A run that is a strict superset of the baseline: the extra
        // benchmarks must be warned about BY NAME — in the stderr
        // warnings and in the markdown step summary — never silently
        // skipped, and never a failure.
        let baseline = vec![BaselineEntry {
            id: "g/kept".into(),
            median_ns: 1_000_000,
        }];
        let current = vec![
            result("g", "kept", 1_100_000),
            result("g", "fresh", 10_000),
            result("socket_fabric", "tcp_transfer", 20_000),
        ];
        let cmp = compare(&baseline, &current);
        assert_eq!(
            cmp.new_benchmarks,
            vec![
                "g/fresh".to_string(),
                "socket_fabric/tcp_transfer".to_string()
            ]
        );
        assert!(cmp.regressions(100.0).is_empty(), "new must not fail");

        let warnings = cmp.warnings();
        assert_eq!(warnings.len(), 2);
        assert!(
            warnings.iter().any(|w| w.contains("`g/fresh`")
                && w.contains("no baseline entry")
                && w.contains("BENCH_BASELINE.json")),
            "{warnings:?}"
        );
        assert!(
            warnings
                .iter()
                .any(|w| w.contains("`socket_fabric/tcp_transfer`")),
            "{warnings:?}"
        );

        let md = render_markdown(&cmp, 100.0);
        assert!(md.contains("not gated"), "{md}");
        assert!(md.contains("- `g/fresh`"), "{md}");
        assert!(md.contains("- `socket_fabric/tcp_transfer`"), "{md}");
    }

    #[test]
    fn group_summaries_aggregate_per_group() {
        let baseline = vec![
            BaselineEntry {
                id: "a/x".into(),
                median_ns: 1_000_000,
            },
            BaselineEntry {
                id: "a/y".into(),
                median_ns: 1_000_000,
            },
            BaselineEntry {
                id: "b/gone".into(),
                median_ns: 1_000_000,
            },
        ];
        let current = vec![
            result("a", "x", 1_500_000),  // +50%
            result("a", "y", 2_500_000),  // +150% → regression at 100%
            result("c", "fresh", 10_000), // new group
        ];
        let cmp = compare(&baseline, &current);
        let groups = group_summaries(&cmp, 100.0);
        assert_eq!(groups.len(), 3);
        let a = groups.iter().find(|g| g.group == "a").unwrap();
        assert_eq!(a.compared, 2);
        assert_eq!(a.regressions, 1);
        assert!((a.mean_delta_pct - 100.0).abs() < 1e-9);
        assert!((a.worst_delta_pct - 150.0).abs() < 1e-9);
        // geomean of ×1.5 and ×2.5 is √3.75 ≈ ×1.936 → +93.6 %.
        assert!((a.geomean_delta_pct - ((1.5f64 * 2.5).sqrt() - 1.0) * 100.0).abs() < 1e-9);
        let b = groups.iter().find(|g| g.group == "b").unwrap();
        assert_eq!((b.compared, b.missing), (0, 1));
        let c = groups.iter().find(|g| g.group == "c").unwrap();
        assert_eq!((c.compared, c.new_benchmarks), (0, 1));
        let md = render_markdown(&cmp, 100.0);
        assert!(md.contains("| a | 2 |"));
        assert!(md.contains("**1 regression(s)**"));
        assert!(md.contains("1 baseline entry missing"));
        assert!(md.contains("**a** geomean Δ: +93.6% across 2 benchmark(s)."));
    }
}
