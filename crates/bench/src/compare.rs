//! Bench-regression comparison: diff a run of the `bench` binary against
//! a committed baseline (`BENCH_BASELINE.json`, one JSON object per
//! line) and report per-benchmark deltas.
//!
//! The gate is deliberately loose: absolute numbers vary across hosts,
//! so CI only fails on *large* regressions (the committed `ci.sh` step
//! uses a +100 % tolerance — fail only when a benchmark got more than
//! 2× slower). The full delta table is always printed, so smaller
//! drifts stay visible in the log without going red.

use dataflower_workflow::json::parse;

use crate::timing::TimingResult;

/// One benchmark of the committed baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// `group/name` identifier, matching the bench binary's output.
    pub id: String,
    /// Median wall-clock time recorded in the baseline.
    pub median_ns: u128,
    /// 99th-percentile latency recorded in the baseline, for entry
    /// classes that gate the tail (the `loadgen` group). `None` for the
    /// median-only micro-benchmark entries.
    pub p99_ns: Option<u128>,
}

/// Parses a baseline file: one JSON object per non-empty line, each with
/// `group`, `name` and `median_ns` fields (exactly what the `bench`
/// binary prints).
///
/// # Errors
///
/// Returns a message naming the offending line when a line is not a
/// JSON object or lacks the required fields.
///
/// # Examples
///
/// ```
/// use dataflower_bench::compare::parse_baseline;
///
/// let entries = parse_baseline(
///     "{\"group\":\"engines\",\"name\":\"wc\",\"runs\":3,\"median_ns\":1500000}\n",
/// )
/// .unwrap();
/// assert_eq!(entries[0].id, "engines/wc");
/// assert_eq!(entries[0].median_ns, 1_500_000);
/// ```
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let v = parse(line).map_err(|e| format!("baseline line {lineno}: {e}"))?;
        let field = |key: &str| {
            v.get(key)
                .ok_or_else(|| format!("baseline line {lineno}: missing `{key}`"))
        };
        let group = field("group")?
            .as_str()
            .ok_or_else(|| format!("baseline line {lineno}: `group` is not a string"))?;
        let name = field("name")?
            .as_str()
            .ok_or_else(|| format!("baseline line {lineno}: `name` is not a string"))?;
        let median = field("median_ns")?
            .as_f64()
            .ok_or_else(|| format!("baseline line {lineno}: `median_ns` is not a number"))?;
        let p99 = match v.get("p99_ns") {
            Some(p) => Some(
                p.as_f64()
                    .ok_or_else(|| format!("baseline line {lineno}: `p99_ns` is not a number"))?
                    .max(0.0) as u128,
            ),
            None => None,
        };
        out.push(BaselineEntry {
            id: format!("{group}/{name}"),
            median_ns: median.max(0.0) as u128,
            p99_ns: p99,
        });
    }
    Ok(out)
}

/// Parses a saved results file (the `--json-out` JSONL of a previous
/// run) back into [`TimingResult`]s, so `bench compare` can diff a
/// recorded run against a baseline without re-running anything.
///
/// # Errors
///
/// Returns a message naming the offending line when a line is not a
/// JSON object or lacks the required fields.
pub fn parse_results(text: &str) -> Result<Vec<TimingResult>, String> {
    let entries = parse_baseline(text)?;
    let mut out = Vec::with_capacity(entries.len());
    for (idx, line) in text.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        let v = parse(line.trim()).expect("parse_baseline accepted this line");
        let e = &entries[idx];
        let (group, name) = e.id.split_once('/').unwrap_or((e.id.as_str(), ""));
        let int_field = |key: &str, default: u128| {
            v.get(key)
                .and_then(|x| x.as_f64())
                .map(|x| x.max(0.0) as u128)
                .unwrap_or(default)
        };
        out.push(TimingResult {
            group: group.to_owned(),
            name: name.to_owned(),
            runs: int_field("runs", 1) as usize,
            median_ns: e.median_ns,
            min_ns: int_field("min_ns", e.median_ns),
            max_ns: int_field("max_ns", e.median_ns),
            p99_ns: e.p99_ns,
        });
    }
    Ok(out)
}

/// One benchmark present in both the baseline and the current run.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// `group/name` identifier.
    pub id: String,
    /// Baseline median.
    pub baseline_ns: u128,
    /// This run's median.
    pub current_ns: u128,
    /// Relative change in percent (positive = slower than baseline).
    pub delta_pct: f64,
    /// Relative p99 change in percent, when both the baseline entry and
    /// the current result carry a tail measurement.
    pub p99_delta_pct: Option<f64>,
}

impl Delta {
    /// True when this benchmark slowed down past `tolerance_pct` — on
    /// the median, or (for tail-gated entries) on the p99. A loadgen
    /// cell whose median holds but whose tail blows out is a
    /// regression.
    pub fn regressed(&self, tolerance_pct: f64) -> bool {
        self.delta_pct > tolerance_pct || self.p99_delta_pct.is_some_and(|p| p > tolerance_pct)
    }
}

/// Outcome of diffing a run against a baseline.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Benchmarks present on both sides, in current-run order.
    pub deltas: Vec<Delta>,
    /// Benchmarks this run produced that the baseline lacks (new cases).
    /// **Warned about by name, never a failure** — but never silent
    /// either: an un-gated benchmark is invisible to the regression
    /// gate until its entry lands in `BENCH_BASELINE.json`.
    pub new_benchmarks: Vec<String>,
    /// Baseline benchmarks this run did not produce — a renamed/removed
    /// case, or a filtered invocation. Individual missing entries inside
    /// a group the run did produce are warnings; a baseline entry whose
    /// **entire group** is absent from the run (see
    /// [`Comparison::stale_groups`]) is a hard failure on unfiltered
    /// runs — a renamed group would otherwise silently un-gate every
    /// benchmark in it.
    pub missing: Vec<String>,
}

impl Comparison {
    /// The deltas exceeding `tolerance_pct`, i.e. the failures.
    pub fn regressions(&self, tolerance_pct: f64) -> Vec<&Delta> {
        self.deltas
            .iter()
            .filter(|d| d.regressed(tolerance_pct))
            .collect()
    }

    /// Baseline groups with **no** benchmark in the current run at all:
    /// every `missing` id whose group (the part before the first `/`)
    /// matches neither a delta nor a new benchmark. These are the
    /// renamed-or-removed groups the bench binary fails on (unfiltered
    /// runs only — a `--group` invocation legitimately skips groups).
    pub fn stale_groups(&self) -> Vec<String> {
        let group_of = |id: &str| id.split('/').next().unwrap_or(id).to_owned();
        let mut present: std::collections::HashSet<String> = std::collections::HashSet::new();
        for d in &self.deltas {
            present.insert(group_of(&d.id));
        }
        for id in &self.new_benchmarks {
            present.insert(group_of(id));
        }
        let mut stale: Vec<String> = Vec::new();
        for id in &self.missing {
            let g = group_of(id);
            if !present.contains(&g) && !stale.contains(&g) {
                stale.push(g);
            }
        }
        stale
    }

    /// Warning lines for the two kinds of baseline drift — baseline
    /// entries this run did not produce, and benchmarks this run
    /// produced that the baseline does not gate. Printed to stderr by
    /// the bench binary so a stale baseline is visible (by name, not as
    /// a silent skip); stale **groups** additionally fail the run (see
    /// [`Comparison::stale_groups`]).
    pub fn warnings(&self) -> Vec<String> {
        self.missing
            .iter()
            .map(|id| {
                format!(
                    "warning: baseline entry `{id}` missing from this run \
                     (renamed, removed, or filtered out); not counted as a regression"
                )
            })
            .chain(self.new_benchmarks.iter().map(|id| {
                format!(
                    "warning: benchmark `{id}` has no baseline entry — it is NOT \
                     gated for regressions; add it to BENCH_BASELINE.json"
                )
            }))
            .collect()
    }
}

/// Per-group aggregation of a [`Comparison`] — one row of the CI
/// step-summary table.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// Benchmark group (the part before the first `/` of the id).
    pub group: String,
    /// Benchmarks compared against the baseline.
    pub compared: usize,
    /// How many of them regressed past the tolerance.
    pub regressions: usize,
    /// Worst (most positive) delta in percent.
    pub worst_delta_pct: f64,
    /// Mean delta in percent.
    pub mean_delta_pct: f64,
    /// Geometric-mean delta in percent: `exp(mean(ln(current/baseline)))
    /// − 1`. Unlike the arithmetic mean, one outlier cannot mask (or
    /// fake) a group-wide drift, so this is the at-a-glance figure of
    /// the CI step summary.
    pub geomean_delta_pct: f64,
    /// Benchmarks new in this run (no baseline entry).
    pub new_benchmarks: usize,
    /// Baseline entries missing from this run.
    pub missing: usize,
}

/// Aggregates a comparison per benchmark group, in first-seen order.
pub fn group_summaries(cmp: &Comparison, tolerance_pct: f64) -> Vec<GroupSummary> {
    let group_of = |id: &str| id.split('/').next().unwrap_or(id).to_owned();
    let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let mut out: Vec<GroupSummary> = Vec::new();
    fn slot<'a>(
        index: &mut std::collections::HashMap<String, usize>,
        out: &'a mut Vec<GroupSummary>,
        group: String,
    ) -> &'a mut GroupSummary {
        let i = *index.entry(group.clone()).or_insert_with(|| {
            out.push(GroupSummary {
                group,
                compared: 0,
                regressions: 0,
                worst_delta_pct: 0.0,
                mean_delta_pct: 0.0,
                geomean_delta_pct: 0.0,
                new_benchmarks: 0,
                missing: 0,
            });
            out.len() - 1
        });
        &mut out[i]
    }
    for d in &cmp.deltas {
        let s = slot(&mut index, &mut out, group_of(&d.id));
        s.compared += 1;
        s.mean_delta_pct += d.delta_pct;
        // Accumulate ln(current/baseline); finalized into the geometric
        // mean below. delta_pct > −100 by construction (current ≥ 0 and
        // baseline > 0), but a zero-time current run would make the
        // ratio 0 — clamp so one degenerate sample cannot collapse the
        // whole group to −100 %.
        s.geomean_delta_pct += (1.0 + d.delta_pct / 100.0).max(1e-9).ln();
        s.worst_delta_pct = if s.compared == 1 {
            d.delta_pct
        } else {
            s.worst_delta_pct.max(d.delta_pct)
        };
        if d.regressed(tolerance_pct) {
            s.regressions += 1;
        }
    }
    for id in &cmp.new_benchmarks {
        slot(&mut index, &mut out, group_of(id)).new_benchmarks += 1;
    }
    for id in &cmp.missing {
        slot(&mut index, &mut out, group_of(id)).missing += 1;
    }
    for s in &mut out {
        if s.compared > 0 {
            s.mean_delta_pct /= s.compared as f64;
            s.geomean_delta_pct = ((s.geomean_delta_pct / s.compared as f64).exp() - 1.0) * 100.0;
        }
    }
    out
}

/// Diffs `current` against `baseline` by `group/name` identity.
pub fn compare(baseline: &[BaselineEntry], current: &[TimingResult]) -> Comparison {
    let mut cmp = Comparison::default();
    let mut seen = std::collections::HashSet::new();
    for r in current {
        let id = format!("{}/{}", r.group, r.name);
        seen.insert(id.clone());
        match baseline.iter().find(|b| b.id == id) {
            Some(b) if b.median_ns > 0 => {
                let delta_pct =
                    (r.median_ns as f64 - b.median_ns as f64) / b.median_ns as f64 * 100.0;
                let p99_delta_pct = match (b.p99_ns, r.p99_ns) {
                    (Some(bp), Some(rp)) if bp > 0 => {
                        Some((rp as f64 - bp as f64) / bp as f64 * 100.0)
                    }
                    _ => None,
                };
                cmp.deltas.push(Delta {
                    id,
                    baseline_ns: b.median_ns,
                    current_ns: r.median_ns,
                    delta_pct,
                    p99_delta_pct,
                });
            }
            _ => cmp.new_benchmarks.push(id),
        }
    }
    for b in baseline {
        if !seen.contains(&b.id) {
            cmp.missing.push(b.id.clone());
        }
    }
    cmp
}

/// Renders the per-benchmark delta table plus new/missing notes — the
/// output of the CI bench-regression step.
pub fn render(cmp: &Comparison, tolerance_pct: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== bench regression report (fails above +{tolerance_pct:.0}%) ==\n"
    ));
    let width = cmp.deltas.iter().map(|d| d.id.len()).max().unwrap_or(0);
    for d in &cmp.deltas {
        let verdict = if d.regressed(tolerance_pct) {
            "REGRESSION"
        } else {
            "ok"
        };
        let tail = d
            .p99_delta_pct
            .map(|p| format!("  p99 {p:>+8.1}%"))
            .unwrap_or_default();
        out.push_str(&format!(
            "  {:width$}  {:>9.3} ms -> {:>9.3} ms  {:>+8.1}%{}  {}\n",
            d.id,
            d.baseline_ns as f64 / 1e6,
            d.current_ns as f64 / 1e6,
            d.delta_pct,
            tail,
            verdict,
        ));
    }
    for id in &cmp.new_benchmarks {
        out.push_str(&format!("  {id}  (new: no baseline entry)\n"));
    }
    for id in &cmp.missing {
        out.push_str(&format!(
            "  {id}  (warning: in baseline, not in this run)\n"
        ));
    }
    let n = cmp.regressions(tolerance_pct).len();
    out.push_str(&format!(
        "{} benchmark(s) compared, {} regression(s) past tolerance\n",
        cmp.deltas.len(),
        n
    ));
    out
}

/// Renders the per-group delta summary as a GitHub-flavoured markdown
/// table — what the bench CI job appends to `$GITHUB_STEP_SUMMARY`.
pub fn render_markdown(cmp: &Comparison, tolerance_pct: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "### Bench regression report (fails above +{tolerance_pct:.0}%)\n\n"
    ));
    out.push_str(
        "| group | compared | geomean Δ | mean Δ | worst Δ | regressions | new | missing |\n",
    );
    out.push_str("|---|---:|---:|---:|---:|---:|---:|---:|\n");
    let groups = group_summaries(cmp, tolerance_pct);
    for g in &groups {
        out.push_str(&format!(
            "| {} | {} | {:+.1}% | {:+.1}% | {:+.1}% | {} | {} | {} |\n",
            g.group,
            g.compared,
            g.geomean_delta_pct,
            g.mean_delta_pct,
            g.worst_delta_pct,
            g.regressions,
            g.new_benchmarks,
            g.missing,
        ));
    }
    // One at-a-glance line per group: the geomean delta is the figure a
    // reviewer scans for in `$GITHUB_STEP_SUMMARY`.
    for g in &groups {
        if g.compared > 0 {
            out.push_str(&format!(
                "\n**{}** geomean Δ: {:+.1}% across {} benchmark(s).",
                g.group, g.geomean_delta_pct, g.compared,
            ));
        }
    }
    if groups.iter().any(|g| g.compared > 0) {
        out.push('\n');
    }
    let n = cmp.regressions(tolerance_pct).len();
    out.push_str(&format!(
        "\n{} benchmark(s) compared, **{} regression(s)** past tolerance.\n",
        cmp.deltas.len(),
        n
    ));
    if !cmp.missing.is_empty() {
        out.push_str(&format!(
            "\n⚠ {} baseline entr{} missing from this run (warned, not failed):\n",
            cmp.missing.len(),
            if cmp.missing.len() == 1 { "y" } else { "ies" },
        ));
        for id in &cmp.missing {
            out.push_str(&format!("- `{id}`\n"));
        }
    }
    if !cmp.new_benchmarks.is_empty() {
        // Named, not just counted: a benchmark without a baseline entry
        // is invisible to the gate, and a reviewer scanning the step
        // summary must see *which* ones run un-gated.
        out.push_str(&format!(
            "\n⚠ {} benchmark(s) in this run have no baseline entry and are \
             **not gated** — add them to `BENCH_BASELINE.json`:\n",
            cmp.new_benchmarks.len(),
        ));
        for id in &cmp.new_benchmarks {
            out.push_str(&format!("- `{id}`\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(group: &str, name: &str, median_ns: u128) -> TimingResult {
        TimingResult {
            group: group.into(),
            name: name.into(),
            runs: 3,
            median_ns,
            min_ns: median_ns,
            max_ns: median_ns,
            p99_ns: None,
        }
    }

    #[test]
    fn baseline_roundtrips_through_bench_output() {
        let line = result("engines", "wc", 1_500_000).to_json_line();
        let entries = parse_baseline(&format!("{line}\n{line}\n\n")).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, "engines/wc");
        assert_eq!(entries[0].median_ns, 1_500_000);
    }

    #[test]
    fn malformed_baseline_is_rejected_with_line_number() {
        let err = parse_baseline("{\"group\":\"g\"}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("name"), "{err}");
        assert!(parse_baseline("not json\n").is_err());
    }

    #[test]
    fn deltas_and_verdicts() {
        let baseline = vec![
            BaselineEntry {
                id: "g/fast".into(),
                median_ns: 1_000_000,
                p99_ns: None,
            },
            BaselineEntry {
                id: "g/slow".into(),
                median_ns: 1_000_000,
                p99_ns: None,
            },
            BaselineEntry {
                id: "g/gone".into(),
                median_ns: 5,
                p99_ns: None,
            },
        ];
        let current = vec![
            result("g", "fast", 900_000),
            result("g", "slow", 2_500_000),
            result("g", "fresh", 1),
        ];
        let cmp = compare(&baseline, &current);
        assert_eq!(cmp.deltas.len(), 2);
        assert!(!cmp.deltas[0].regressed(100.0));
        assert!(cmp.deltas[1].regressed(100.0)); // +150% > +100%
        assert!(!cmp.deltas[1].regressed(200.0));
        assert_eq!(cmp.new_benchmarks, vec!["g/fresh".to_string()]);
        assert_eq!(cmp.missing, vec!["g/gone".to_string()]);
        let report = render(&cmp, 100.0);
        assert!(report.contains("REGRESSION"));
        assert!(report.contains("1 regression(s)"));
    }

    #[test]
    fn missing_entries_warn_but_stale_groups_fail() {
        // A baseline that is a strict superset of the run. A missing
        // entry inside a group the run still produces (`g/removed`) is a
        // warning and never a regression; a baseline entry whose whole
        // group vanished from the run (`old_group/gone`) names a stale
        // group, which the bench binary fails on.
        let baseline = vec![
            BaselineEntry {
                id: "g/kept".into(),
                median_ns: 1_000_000,
                p99_ns: None,
            },
            BaselineEntry {
                id: "g/removed".into(),
                median_ns: 1_000_000,
                p99_ns: None,
            },
            BaselineEntry {
                id: "old_group/gone".into(),
                median_ns: 1_000_000,
                p99_ns: None,
            },
        ];
        let current = vec![result("g", "kept", 1_100_000)];
        let cmp = compare(&baseline, &current);
        assert_eq!(cmp.missing.len(), 2);
        assert!(
            cmp.regressions(100.0).is_empty(),
            "missing is not a regression"
        );
        assert_eq!(cmp.stale_groups(), vec!["old_group".to_string()]);
        let warnings = cmp.warnings();
        assert_eq!(warnings.len(), 2);
        assert!(warnings[0].contains("warning") && warnings[0].contains("g/removed"));
        assert!(render(&cmp, 100.0).contains("warning: in baseline, not in this run"));
    }

    #[test]
    fn a_new_benchmark_keeps_its_group_fresh() {
        // The baseline gates `loadgen/old`, the run produced only
        // `loadgen/new`: the group is still present in the run, so the
        // entry is a plain warning, not a stale group.
        let baseline = vec![BaselineEntry {
            id: "loadgen/old".into(),
            median_ns: 1_000_000,
            p99_ns: None,
        }];
        let current = vec![result("loadgen", "new", 10_000)];
        let cmp = compare(&baseline, &current);
        assert_eq!(cmp.missing, vec!["loadgen/old".to_string()]);
        assert!(cmp.stale_groups().is_empty());
    }

    #[test]
    fn p99_regression_fails_even_when_the_median_holds() {
        let baseline = vec![
            BaselineEntry {
                id: "loadgen/full/mix/wc".into(),
                median_ns: 1_000_000,
                p99_ns: Some(10_000_000),
            },
            BaselineEntry {
                id: "loadgen/full/mix/svd".into(),
                median_ns: 1_000_000,
                p99_ns: Some(10_000_000),
            },
        ];
        let steady = TimingResult {
            p99_ns: Some(12_000_000), // +20% tail, same median
            ..result("loadgen", "full/mix/wc", 1_000_000)
        };
        let blown = TimingResult {
            p99_ns: Some(30_000_000), // +200% tail, same median
            ..result("loadgen", "full/mix/svd", 1_000_000)
        };
        let cmp = compare(&baseline, &[steady, blown]);
        assert_eq!(cmp.deltas.len(), 2);
        assert!(!cmp.deltas[0].regressed(100.0));
        assert!(cmp.deltas[1].regressed(100.0), "tail blow-out must gate");
        assert!((cmp.deltas[1].delta_pct).abs() < 1e-9, "median held");
        let report = render(&cmp, 100.0);
        assert!(report.contains("p99"), "{report}");
        assert!(report.contains("REGRESSION"), "{report}");
    }

    #[test]
    fn results_roundtrip_through_parse_results() {
        let rows = vec![
            TimingResult {
                p99_ns: Some(9_000_000),
                ..result("loadgen", "smoke/wc-inproc/wc", 1_500_000)
            },
            result("engines", "single_request/wc/DataFlower", 2_000_000),
        ];
        let text: String = rows
            .iter()
            .map(|r| format!("{}\n", r.to_json_line()))
            .collect();
        let parsed = parse_results(&text).unwrap();
        assert_eq!(parsed, rows);
    }

    #[test]
    fn ungated_benchmarks_are_named_in_warnings_and_markdown() {
        // A run that is a strict superset of the baseline: the extra
        // benchmarks must be warned about BY NAME — in the stderr
        // warnings and in the markdown step summary — never silently
        // skipped, and never a failure.
        let baseline = vec![BaselineEntry {
            id: "g/kept".into(),
            median_ns: 1_000_000,
            p99_ns: None,
        }];
        let current = vec![
            result("g", "kept", 1_100_000),
            result("g", "fresh", 10_000),
            result("socket_fabric", "tcp_transfer", 20_000),
        ];
        let cmp = compare(&baseline, &current);
        assert_eq!(
            cmp.new_benchmarks,
            vec![
                "g/fresh".to_string(),
                "socket_fabric/tcp_transfer".to_string()
            ]
        );
        assert!(cmp.regressions(100.0).is_empty(), "new must not fail");

        let warnings = cmp.warnings();
        assert_eq!(warnings.len(), 2);
        assert!(
            warnings.iter().any(|w| w.contains("`g/fresh`")
                && w.contains("no baseline entry")
                && w.contains("BENCH_BASELINE.json")),
            "{warnings:?}"
        );
        assert!(
            warnings
                .iter()
                .any(|w| w.contains("`socket_fabric/tcp_transfer`")),
            "{warnings:?}"
        );

        let md = render_markdown(&cmp, 100.0);
        assert!(md.contains("not gated"), "{md}");
        assert!(md.contains("- `g/fresh`"), "{md}");
        assert!(md.contains("- `socket_fabric/tcp_transfer`"), "{md}");
    }

    #[test]
    fn group_summaries_aggregate_per_group() {
        let baseline = vec![
            BaselineEntry {
                id: "a/x".into(),
                median_ns: 1_000_000,
                p99_ns: None,
            },
            BaselineEntry {
                id: "a/y".into(),
                median_ns: 1_000_000,
                p99_ns: None,
            },
            BaselineEntry {
                id: "b/gone".into(),
                median_ns: 1_000_000,
                p99_ns: None,
            },
        ];
        let current = vec![
            result("a", "x", 1_500_000),  // +50%
            result("a", "y", 2_500_000),  // +150% → regression at 100%
            result("c", "fresh", 10_000), // new group
        ];
        let cmp = compare(&baseline, &current);
        let groups = group_summaries(&cmp, 100.0);
        assert_eq!(groups.len(), 3);
        let a = groups.iter().find(|g| g.group == "a").unwrap();
        assert_eq!(a.compared, 2);
        assert_eq!(a.regressions, 1);
        assert!((a.mean_delta_pct - 100.0).abs() < 1e-9);
        assert!((a.worst_delta_pct - 150.0).abs() < 1e-9);
        // geomean of ×1.5 and ×2.5 is √3.75 ≈ ×1.936 → +93.6 %.
        assert!((a.geomean_delta_pct - ((1.5f64 * 2.5).sqrt() - 1.0) * 100.0).abs() < 1e-9);
        let b = groups.iter().find(|g| g.group == "b").unwrap();
        assert_eq!((b.compared, b.missing), (0, 1));
        let c = groups.iter().find(|g| g.group == "c").unwrap();
        assert_eq!((c.compared, c.new_benchmarks), (0, 1));
        let md = render_markdown(&cmp, 100.0);
        assert!(md.contains("| a | 2 |"));
        assert!(md.contains("**1 regression(s)**"));
        assert!(md.contains("1 baseline entry missing"));
        assert!(md.contains("**a** geomean Δ: +93.6% across 2 benchmark(s)."));
    }
}
