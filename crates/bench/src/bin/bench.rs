//! In-tree wall-clock benchmarks of the reproduction itself: how fast the
//! simulated engines and the substrate data structures run on this host.
//! One JSON line per benchmark on stdout.
//!
//! ```text
//! cargo run --release -p dataflower-bench --bin bench -- run            # everything
//! cargo run --release -p dataflower-bench --bin bench -- run flownet    # filter
//! cargo run --release -p dataflower-bench --bin bench -- run --runs 9
//! ```
//!
//! These measure the *reproduction's* performance (simulator events per
//! second, live-runtime end-to-end latency), complementing the `figures`
//! binary which reproduces the paper's results.
//!
//! **Regression gate** (the CI bench step): `run --compare <baseline>`
//! diffs this run against a committed baseline file and prints
//! per-benchmark deltas; the process exits non-zero when a benchmark
//! slowed past `--tolerance <pct>` (default 100, i.e. more than 2×
//! slower) or when a whole baseline group vanished from the run (a
//! stale baseline). `--json-out <file>` additionally writes the result
//! JSON lines to a file (the CI artifact), and `--summary <file>`
//! writes a per-group markdown delta table (appended to
//! `$GITHUB_STEP_SUMMARY` in CI):
//!
//! ```text
//! bench run --runs 3 --compare BENCH_BASELINE.json --tolerance 100 \
//!           --json-out bench-results.jsonl --summary bench-summary.md
//! ```
//!
//! **Open-loop load harness**: `bench loadgen --config <name>` runs a
//! named multi-tenant load configuration (see
//! `dataflower_workloads::loadgen`), writes its markdown report to
//! `reports/loadgen-<name>.md`, and gates p50 **and p99** latency per
//! cell × benchmark against `LOADGEN_BASELINE.json`:
//!
//! ```text
//! bench loadgen --config smoke --compare LOADGEN_BASELINE.json
//! bench loadgen --config full --write-baseline LOADGEN_BASELINE.json
//! ```
//!
//! The pre-subcommand flag spelling still works (`bench --runs 3
//! --compare …` means `bench run …`); see `dataflower_bench::cli`.

use std::cell::RefCell;
use std::sync::Arc;

use dataflower::WaitMatchMemory;
use dataflower_bench::cli::{
    self, Command, CompareOptions, FuzzOptions, LoadgenOptions, RunOptions,
};
use dataflower_bench::compare::{compare, parse_baseline, parse_results, render, render_markdown};
use dataflower_bench::timing::{time, TimingResult};
use dataflower_cluster::RequestId;
use dataflower_metrics::Samples;
use dataflower_rt::channel as rt_channel;
use dataflower_rt::ring as rt_ring;
use dataflower_rt::{chunk_spans, BytePool, Bytes, NodeScheduler, Reassembler, ShardedSink};
use dataflower_sim::{EventQueue, FlowNet, SimTime};
use dataflower_workflow::{EdgeId, FnId};
use dataflower_workloads::{
    bench_input, launch_bench_cluster, loadgen, run_diff_fuzz, serve_worker_if_spawned, Benchmark,
    ChaosClusterConfig, FaultMode, FuzzConfig, LivePlacement, LoadgenConfig, Scenario, SystemKind,
    TcpProfile, WorkloadSpec,
};

/// Exit code when a regression exceeds the tolerance.
const EXIT_REGRESSION: i32 = 3;

/// Exit code when the baseline names a group the run no longer
/// produces — a stale baseline that must be updated, not warned about.
const EXIT_STALE_BASELINE: i32 = 4;

/// Exit code when `bench fuzz` finds a sim↔live divergence (or a
/// byte-identity or replay failure) on any seed.
const EXIT_DIVERGENCE: i32 = 5;

/// Exit code when any `bench fuzz` seed hung past its watchdog deadline
/// — the campaign still completes and names the seed, but a wedge is a
/// distinct (worse) verdict than a divergence.
const EXIT_HUNG: i32 = 6;

fn main() {
    // The socket_fabric group and the loadgen TCP cells launch
    // worker-process TCP clusters that re-execute this binary
    // (argv-free, env-tagged) as the workers; those re-executions enter
    // here and never return.
    serve_worker_if_spawned();

    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse(&args) {
        Ok(Command::Help) => println!("{}", cli::USAGE),
        Ok(Command::Run(opts)) => run_command(&opts),
        Ok(Command::Compare(opts)) => {
            let text = read_or_die(&opts.results);
            let results = parse_results(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse results `{}`: {e}", opts.results);
                std::process::exit(2);
            });
            // A saved results file is complete by construction, so stale
            // baseline groups are enforced.
            gate(&results, &opts.compare, true);
        }
        Ok(Command::Loadgen(opts)) => loadgen_command(&opts),
        Ok(Command::Fuzz(opts)) => fuzz_command(&opts),
        Err(e) => {
            eprintln!("bench: {e}\n{}", cli::USAGE);
            std::process::exit(2);
        }
    }
}

fn read_or_die(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read `{path}`: {e}");
        std::process::exit(2);
    })
}

fn write_or_die(path: &str, contents: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write `{path}`: {e}");
        std::process::exit(2);
    }
}

/// Diffs `results` against the baseline in `opts` (no-op without one),
/// prints the delta report, writes the markdown summary, and exits
/// non-zero on regressions — or, when `enforce_stale_groups` is set (an
/// unfiltered run), on baseline groups the run no longer produces.
fn gate(results: &[TimingResult], opts: &CompareOptions, enforce_stale_groups: bool) {
    let Some(path) = &opts.baseline else {
        if opts.summary_out.is_some() {
            eprintln!("bench: --summary needs --compare to have something to summarize");
            std::process::exit(2);
        }
        return;
    };
    let tolerance_pct = opts.tolerance_pct;
    let baseline = parse_baseline(&read_or_die(path)).unwrap_or_else(|e| {
        eprintln!("cannot parse baseline `{path}`: {e}");
        std::process::exit(2);
    });
    let cmp = compare(&baseline, results);
    print!("{}", render(&cmp, tolerance_pct));
    for w in cmp.warnings() {
        eprintln!("bench: {w}");
    }
    if let Some(out) = &opts.summary_out {
        write_or_die(out, &render_markdown(&cmp, tolerance_pct));
    }
    if enforce_stale_groups {
        let stale = cmp.stale_groups();
        if !stale.is_empty() {
            eprintln!(
                "bench: baseline `{path}` names group(s) this run no longer produces: {} — \
                 update the baseline",
                stale.join(", ")
            );
            std::process::exit(EXIT_STALE_BASELINE);
        }
    }
    let regressions = cmp.regressions(tolerance_pct);
    if !regressions.is_empty() {
        eprintln!(
            "bench: {} benchmark(s) regressed more than {tolerance_pct:.0}% vs `{path}`",
            regressions.len()
        );
        std::process::exit(EXIT_REGRESSION);
    }
}

fn run_command(opts: &RunOptions) {
    let harness = Harness {
        filters: opts.filters.clone(),
        group_filters: opts.group_filters.clone(),
        runs: opts.runs,
        results: RefCell::new(Vec::new()),
    };
    engine_benchmarks(&harness);
    live_cluster_benchmarks(&harness);
    elastic_benchmarks(&harness);
    recovery_benchmarks(&harness);
    control_plane_benchmarks(&harness);
    data_plane_benchmarks(&harness);
    scheduler_benchmarks(&harness);
    socket_fabric_benchmarks(&harness);
    trace_codec_benchmarks(&harness);
    substrate_benchmarks(&harness);

    if let Some(path) = &opts.json_out {
        let lines: String = harness
            .results
            .borrow()
            .iter()
            .map(|r| format!("{}\n", r.to_json_line()))
            .collect();
        write_or_die(path, &lines);
    }

    // Stale baseline groups only fail unfiltered runs — `bench run
    // --group engines` legitimately skips every other group.
    let unfiltered = opts.filters.is_empty() && opts.group_filters.is_empty();
    gate(&harness.results.borrow(), &opts.compare, unfiltered);
}

/// `bench loadgen`: run the named config, write the committed markdown
/// report, and gate the p50/p99 rows against the loadgen baseline.
fn loadgen_command(opts: &LoadgenOptions) {
    let cfg = LoadgenConfig::by_name(&opts.config).unwrap_or_else(|| {
        eprintln!(
            "bench loadgen: unknown config `{}` (expected smoke, soak or full)",
            opts.config
        );
        std::process::exit(2);
    });
    eprintln!(
        "bench loadgen: running config `{}` ({} cell(s))",
        cfg.name,
        cfg.cells.len()
    );
    let report = loadgen::run(&cfg);

    let report_path = opts
        .report_out
        .clone()
        .unwrap_or_else(|| format!("reports/loadgen-{}.md", cfg.name));
    write_or_die(&report_path, &report.to_markdown());
    eprintln!("bench loadgen: report written to `{report_path}`");

    let gate_rows = report.gate_rows();
    for row in &gate_rows {
        if let Some(v) = row.slo_violations {
            eprintln!("bench loadgen: {}: {v} p99-SLO violation(s)", row.name);
        }
    }
    let rows: Vec<TimingResult> = gate_rows
        .into_iter()
        .map(|row| TimingResult {
            group: "loadgen".to_string(),
            name: row.name,
            runs: 1,
            median_ns: row.p50_ns,
            min_ns: row.p50_ns,
            max_ns: row.p99_ns,
            p99_ns: Some(row.p99_ns),
        })
        .collect();
    for r in &rows {
        println!("{}", r.to_json_line());
    }
    if let Some(path) = &opts.write_baseline {
        let lines: String = rows
            .iter()
            .map(|r| format!("{}\n", r.to_json_line()))
            .collect();
        write_or_die(path, &lines);
        eprintln!("bench loadgen: baseline written to `{path}`");
    }
    gate(&rows, &opts.compare, true);
}

/// `bench fuzz`: sim↔live differential fuzzing. Runs the seed batch
/// (live run → recorded trace → deterministic simulator replay → diff),
/// prints a one-line summary with the recorder's bytes-per-event
/// figure, and exits non-zero on any divergence. Each failing seed's
/// trace is dumped under `--dump-dir` and reproduces with
/// `bench fuzz --seed N`.
fn fuzz_command(opts: &FuzzOptions) {
    let (seeds, start_seed) = match opts.seed {
        Some(seed) => (1, seed),
        None => (opts.seeds, opts.start_seed),
    };
    let cfg = FuzzConfig {
        seeds,
        start_seed,
        dump_dir: Some(opts.dump_dir.clone().into()),
        timeout: std::time::Duration::from_secs(opts.timeout_secs),
        seed_deadline: None,
    };
    eprintln!(
        "bench fuzz: {seeds} seed(s) starting at {start_seed} (timeout {}s/seed)",
        opts.timeout_secs
    );
    let report = run_diff_fuzz(&cfg);
    println!(
        "bench fuzz: {} seed(s), {} request(s), {} trace event(s), \
         {:.2} bytes/event, {} failure(s)",
        report.seeds_run,
        report.requests,
        report.events,
        report.bytes_per_event,
        report.failures.len()
    );
    for f in &report.failures {
        let trace = f
            .trace_path
            .as_deref()
            .map(|p| format!(" (trace: {})", p.display()))
            .unwrap_or_default();
        let verdict = if f.hung { "HUNG" } else { "FAILED" };
        eprintln!("bench fuzz: seed {} {verdict}: {}{trace}", f.seed, f.what);
        eprintln!("bench fuzz: reproduce with `bench fuzz --seed {}`", f.seed);
    }
    if report.failures.iter().any(|f| f.hung) {
        std::process::exit(EXIT_HUNG);
    }
    if !report.passed() {
        std::process::exit(EXIT_DIVERGENCE);
    }
}

/// Elastic-scaling benchmarks: the pressure-aware autoscaler driven by a
/// live burst and a Zipf-skewed fan-out. Each run asserts the scenario's
/// byte-identity internally; the burst additionally asserts that scaling
/// actually happened, so the bench doubles as a smoke gate.
fn elastic_benchmarks(h: &Harness) {
    h.run("elastic", "bursty_cluster/wc", || {
        let report = WorkloadSpec::new()
            .benchmark(Benchmark::Wc)
            .warmup(2)
            .requests(8)
            .payload_bytes(128 * 1024)
            .settle(std::time::Duration::from_secs(2))
            .run();
        assert!(report.stats.scale_out_events >= 1);
        report.requests
    });
    h.run("elastic", "skewed_fanout/8branches", || {
        let report = WorkloadSpec::new()
            .skewed_fanout(8, 1.2)
            .requests(4)
            .payload_bytes(128 * 1024)
            .run();
        assert!(report.output_bytes > 0);
        report.requests
    });
}

/// Fault-recovery benchmarks (§6.2): the chaos scenario end to end —
/// invoke, crash the fan-out node mid-transfer, restart, recover — at
/// two checkpoint intervals, so the baseline pins how recovery latency
/// moves with the interval (a larger interval re-sends more bytes after
/// the crash but acks less often before it). Each run asserts
/// byte-identity and resume-from-mark internally, so the bench doubles
/// as a smoke gate. A `Reassembler` rollback/resume micro-benchmark
/// isolates the receive-side cost of the same cycle.
fn recovery_benchmarks(h: &Harness) {
    for (label, interval) in [("8k", 8 * 1024usize), ("32k", 32 * 1024usize)] {
        h.run(
            "recovery",
            &format!("chaos_wc_crash_replay/interval_{label}"),
            || {
                // Start from the chaos scenario's default runtime knobs
                // and pin only the checkpoint interval under test.
                let mut rt = ChaosClusterConfig::default().rt;
                rt.checkpoint_interval_bytes = interval;
                let report = WorkloadSpec::new()
                    .benchmark(Benchmark::Wc)
                    .faults(FaultMode::ChaosCrashRestart)
                    .requests(1)
                    .payload_bytes(192 * 1024)
                    .config(rt)
                    .run();
                assert!(report.stats.recovered_transfers > 0);
                assert!(report.stats.resumed_from_mark_bytes > 0);
                report.requests
            },
        );
    }
    // Receive side in isolation: reassemble 2 MiB to 75%, crash (roll
    // back to the last 256 KiB mark), then replay from the mark.
    const ROLLBACK_BYTES: usize = 2 * 1024 * 1024;
    const ROLLBACK_CHUNK: usize = 64 * 1024;
    const ROLLBACK_MARK: usize = 256 * 1024;
    let payload = Bytes::from((0..ROLLBACK_BYTES).map(|i| i as u8).collect::<Vec<_>>());
    h.run("recovery", "reassembler_rollback_resume_2mib", move || {
        let mut r = Reassembler::new(payload.len());
        let spans = chunk_spans(payload.len(), ROLLBACK_CHUNK);
        let crash_at = spans.len() * 3 / 4;
        for (lo, hi) in &spans[..crash_at] {
            assert!(r.write_bytes(*lo, payload.slice(*lo..*hi)));
        }
        let mark = (r.contiguous_prefix() / ROLLBACK_MARK) * ROLLBACK_MARK;
        r.rollback_to(mark);
        for (lo, hi) in &spans {
            if *hi > mark {
                assert!(r.write_bytes(*lo, payload.slice(*lo..*hi)));
            }
        }
        assert!(r.complete());
        let out = r.into_bytes();
        assert_eq!(out.len(), payload.len());
        out
    });
}

/// Orchestrator control-plane benchmarks: what the heartbeat machinery
/// costs when nothing goes wrong (the same live run with and without the
/// control plane), how long a permanent node loss takes to heal end to
/// end (detection + relocation + replay, inside one request deadline),
/// and the drain latency of a voluntary live migration. The loss and
/// migration cases assert their byte-identity contracts internally, so
/// the bench doubles as a smoke gate.
fn control_plane_benchmarks(h: &Harness) {
    use std::time::Duration;

    use dataflower_rt::ClusterConfig;

    for (label, heartbeats) in [("on_10ms", true), ("off", false)] {
        h.run(
            "control_plane",
            &format!("heartbeat_overhead/wc_{label}"),
            move || {
                let mut builder = ClusterConfig::new().recovery(Duration::from_millis(50));
                if heartbeats {
                    builder = builder.heartbeat(Duration::from_millis(10), 3);
                }
                let report = WorkloadSpec::new()
                    .benchmark(Benchmark::Wc)
                    .nodes(3)
                    .requests(2)
                    .payload_bytes(128 * 1024)
                    .config(builder.build())
                    .run();
                assert_eq!(report.stats.node_losses, 0);
                assert_eq!(report.stats.heartbeats > 0, heartbeats);
                report.requests
            },
        );
    }
    h.run("control_plane", "relocation_recover/wc_128k", || {
        let report = WorkloadSpec::new()
            .benchmark(Benchmark::Wc)
            .faults(FaultMode::NodeLoss)
            .payload_bytes(128 * 1024)
            .run();
        assert!(report.relocated().expect("node-loss detail") > 0);
        assert!(report.stats.node_losses >= 1);
        report.requests
    });
    h.run("control_plane", "migration_drain/svd_128k", || {
        let report = WorkloadSpec::new()
            .benchmark(Benchmark::Svd)
            .faults(FaultMode::LiveMigration)
            .payload_bytes(128 * 1024)
            .requests(2)
            .run();
        assert!(report.stats.live_migrations >= 1);
        report.requests
    });
}

/// TCP fabric benchmarks: the versioned wire format and the
/// worker-process socket transport. The codec case isolates
/// encode+decode CPU cost; the loopback case streams the same frames
/// through a real kernel socket; the cluster case is the full
/// worker-process runtime end to end — spawn, Hello, stream, ack,
/// shutdown — pinning the process-mode overhead the in-process fabric
/// avoids.
fn socket_fabric_benchmarks(h: &Harness) {
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    use dataflower_rt::wire::encode_parts;
    use dataflower_rt::{Decoder, Frame};

    /// 1 MiB of payload as 16 KiB chunk frames, encoded once.
    fn session_bytes() -> (Vec<u8>, usize) {
        let payload = Bytes::from((0..1024 * 1024).map(|i| i as u8).collect::<Vec<_>>());
        let mut session = Vec::new();
        let mut frames = 0;
        for (lo, hi) in chunk_spans(payload.len(), 16 * 1024) {
            let frame = Frame::Chunk {
                req: 1,
                edge: 2,
                key: "data@producer".into(),
                transfer: 3,
                offset: lo as u64,
                total: payload.len() as u64,
                bytes: payload.slice(lo..hi),
            };
            let (head, body) = encode_parts(&frame);
            session.extend_from_slice(&head);
            if let Some(b) = body {
                session.extend_from_slice(&b);
            }
            frames += 1;
        }
        (session, frames)
    }

    h.run("socket_fabric", "wire_codec_roundtrip_1mib", || {
        let (session, frames) = session_bytes();
        let mut dec = Decoder::new();
        let mut got = 0usize;
        for piece in session.chunks(61) {
            dec.feed(piece);
            while let Some(f) = dec.next_frame().expect("codec stream decodes") {
                assert!(matches!(f, Frame::Chunk { .. }));
                got += 1;
            }
        }
        assert_eq!(got, frames);
        got
    });

    h.run("socket_fabric", "tcp_loopback_stream_1mib", || {
        let (session, frames) = session_bytes();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("listener addr");
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect loopback");
            s.set_nodelay(true).expect("nodelay");
            s.write_all(&session).expect("stream session");
        });
        let (mut conn, _) = listener.accept().expect("accept loopback");
        let mut dec = Decoder::new();
        let mut buf = vec![0u8; 64 * 1024];
        let mut got = 0usize;
        while got < frames {
            let n = conn.read(&mut buf).expect("read loopback");
            assert!(n > 0, "EOF mid-stream");
            dec.feed(&buf[..n]);
            while let Some(_f) = dec.next_frame().expect("wire stream decodes") {
                got += 1;
            }
        }
        writer.join().expect("writer thread");
        got
    });

    h.run("socket_fabric", "tcp_cluster_wc_64k", || {
        let cluster = launch_bench_cluster(Benchmark::Wc, 3, 0, TcpProfile::Plain)
            .expect("launch TCP cluster");
        let (name, input) = bench_input(Benchmark::Wc, 64 * 1024);
        let req = cluster.invoke(vec![(name.to_owned(), Bytes::from(input))]);
        let outputs = cluster
            .wait(req, std::time::Duration::from_secs(60))
            .expect("TCP cluster request");
        assert!(!outputs.is_empty() && !outputs[0].1.is_empty());
        let len = outputs[0].1.len();
        cluster.shutdown();
        len
    });
}

/// Trace-codec benchmarks: the record/replay event stream of
/// `dataflower_rt::trace` (the differential-fuzz substrate). The encode
/// case isolates the varint writer; the decode case streams the same
/// bytes through `TraceDecoder` in torn 61-byte reads, the same
/// worst-case framing the wire-codec bench uses.
fn trace_codec_benchmarks(h: &Harness) {
    use dataflower::PipeKind;
    use dataflower_rt::trace::{encode_trace, EventKind, TraceDecoder, TraceEvent};

    /// A 10 001-event synthetic stream: the Meta preamble plus a cycle
    /// of the three compared kinds (Invoke, PipeChoice, RemoteMarks)
    /// and a Request, shaped like a long fuzz run.
    fn synthetic_events() -> Vec<TraceEvent> {
        let mut events = vec![TraceEvent {
            at_us: 0,
            kind: EventKind::Meta {
                nodes: 4,
                direct_threshold_bytes: 16 * 1024,
                chunk_bytes: 64 * 1024,
                checkpoint_interval_bytes: 256 * 1024,
                workflow_json: "{\"functions\":[]}".to_string(),
            },
        }];
        for i in 0..10_000u64 {
            let kind = match i % 4 {
                0 => EventKind::Request {
                    req: i / 4,
                    payload_bytes: 128 * 1024,
                },
                1 => EventKind::Invoke {
                    req: i / 4,
                    func: (i % 7) as u32,
                },
                2 => EventKind::PipeChoice {
                    req: i / 4,
                    edge: (i % 11) as u32,
                    kind: match i % 3 {
                        0 => PipeKind::DirectSocket,
                        1 => PipeKind::LocalPipe,
                        _ => PipeKind::RemotePipe,
                    },
                    bytes: 1 + i * 37,
                },
                _ => EventKind::RemoteMarks {
                    req: i / 4,
                    edge: (i % 11) as u32,
                    chunks: 2 + (i % 5) as u32,
                    marks: (i % 3) as u32,
                },
            };
            events.push(TraceEvent {
                at_us: i * 13,
                kind,
            });
        }
        events
    }

    h.run("trace_codec", "encode_10k_events", || {
        let events = synthetic_events();
        let bytes = encode_trace(&events);
        assert!(bytes.len() > events.len());
        bytes.len()
    });

    let encoded = encode_trace(&synthetic_events());
    let expected = synthetic_events().len();
    h.run("trace_codec", "decode_10k_events_torn", move || {
        let mut dec = TraceDecoder::new();
        let mut got = 0usize;
        for piece in encoded.chunks(61) {
            dec.feed(piece);
            while let Some(_ev) = dec.next_event().expect("trace stream decodes") {
                got += 1;
            }
        }
        assert_eq!(got, expected);
        got
    });
}

/// CLI-configured runner: skips filtered-out benchmarks *before* timing
/// them, so a filtered invocation costs only the selected cases.
/// Positional arguments are substring filters; `--group` arguments are
/// `group/`-prefix filters (a benchmark runs if it matches either kind,
/// or no filters were given at all). Results are collected for the
/// `--compare` regression report.
struct Harness {
    filters: Vec<String>,
    group_filters: Vec<String>,
    runs: usize,
    results: RefCell<Vec<TimingResult>>,
}

impl Harness {
    fn run<T>(&self, group: &str, name: &str, f: impl FnMut() -> T) {
        let id = format!("{group}/{name}");
        let selected = (self.filters.is_empty() && self.group_filters.is_empty())
            || self.filters.iter().any(|flt| id.contains(flt.as_str()))
            || self
                .group_filters
                .iter()
                .any(|g| id.starts_with(g.as_str()));
        if selected {
            let result = time(group, name, self.runs, f);
            println!("{}", result.to_json_line());
            self.results.borrow_mut().push(result);
        }
    }
}

/// End-to-end **live** benchmarks: the four paper workflows executed
/// with real threads and real bytes on a multi-node `ClusterRuntime`
/// topology (spread placement: the streaming remote pipe carries the
/// large intermediates), plus a co-located single-node reference.
fn live_cluster_benchmarks(h: &Harness) {
    for bench in Benchmark::ALL {
        h.run(
            "live_cluster",
            &format!("{}/3nodes_spread", bench.name()),
            || {
                let report = WorkloadSpec::new()
                    .benchmark(bench)
                    .nodes(3)
                    .requests(2)
                    .payload_bytes(128 * 1024)
                    .run();
                assert!(report.stats.remote_bytes > 0);
                report
            },
        );
    }
    h.run("live_cluster", "wc/1node_colocated", || {
        let report = WorkloadSpec::new()
            .benchmark(Benchmark::Wc)
            .nodes(1)
            .placement(LivePlacement::SingleNode)
            .requests(2)
            .payload_bytes(128 * 1024)
            .run();
        assert_eq!(report.stats.remote_bytes, 0);
        report
    });
}

/// End-to-end engine benchmarks: cost of simulating workflow requests,
/// per system, plus a closed-loop burst.
fn engine_benchmarks(h: &Harness) {
    for sys in [
        SystemKind::DataFlower,
        SystemKind::FaaSFlow,
        SystemKind::Sonic,
        SystemKind::Centralized,
    ] {
        h.run(
            "engines",
            &format!("single_request/wc/{}", sys.label()),
            || {
                let scenario = Scenario::seeded(5);
                let report = scenario.open_loop(
                    sys,
                    Benchmark::Wc.workflow(),
                    Benchmark::Wc.default_payload(),
                    30.0,
                    20,
                );
                assert!(report.primary().completed > 0);
                report
            },
        );
    }
    for bench in [Benchmark::Wc, Benchmark::Img] {
        h.run(
            "engines",
            &format!("closed_loop_16_clients_60s/DataFlower/{}", bench.name()),
            || {
                let scenario = Scenario::seeded(6);
                scenario.closed_loop(
                    SystemKind::DataFlower,
                    bench.workflow(),
                    bench.default_payload(),
                    16,
                    60,
                )
            },
        );
    }
}

/// Data-plane micro-benchmarks, each measured against its pre-change
/// counterpart in the same run: the lock-striped sink vs. a single-lock
/// sink under 4 concurrent producers, zero-copy `Bytes::slice` chunking
/// vs. per-chunk copies for an 8 MiB remote-pipe transfer, and batched
/// (`send_many`/`drain_into`) vs. single-frame channel shipping.
fn data_plane_benchmarks(h: &Harness) {
    // 4 producer threads hammer one sink with stripe-spread request ids
    // (insert, read-modify, remove) while a gauge thread sweeps the whole
    // map the way `parked_entries` and the janitor do. With one lock
    // every sweep stalls every producer for the whole scan; striped,
    // producers only collide with the sweep on 1-in-16 stripes. The
    // single-lock variant is the same structure with one stripe — the
    // pre-change sink.
    const SINK_THREADS: u64 = 4;
    const SINK_OPS: u64 = 2_000;
    // Entries parked up-front so the sweeps scan a realistically full map.
    const SINK_PARKED: u64 = 4_096;
    let sink_bench = |stripes: usize| {
        use std::sync::atomic::{AtomicBool, Ordering};
        let sink: Arc<ShardedSink<u64>> = Arc::new(ShardedSink::new(stripes));
        for k in 0..SINK_PARKED {
            sink.insert(u64::MAX - k, k);
        }
        let done = Arc::new(AtomicBool::new(false));
        let sweeper = {
            let sink = Arc::clone(&sink);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut sweeps = 0u64;
                while !done.load(Ordering::Relaxed) {
                    std::hint::black_box(sink.fold(0u64, |a, _, v| a + v));
                    sweeps += 1;
                }
                sweeps
            })
        };
        let workers: Vec<_> = (0..SINK_THREADS)
            .map(|t| {
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    for i in 0..SINK_OPS {
                        let key = t * 1_000_000 + i;
                        sink.insert(key, i);
                        sink.with(key, |v| {
                            *v.expect("inserted above") += 1;
                        });
                        assert_eq!(sink.remove(key), Some(i + 1));
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("sink worker");
        }
        done.store(true, Ordering::Relaxed);
        let sweeps = sweeper.join().expect("sweeper");
        assert!(sweeps > 0);
        assert_eq!(sink.len() as u64, SINK_PARKED);
    };
    h.run("data_plane", "sink_insert_take_4x2000/sharded16", || {
        sink_bench(16)
    });
    h.run("data_plane", "sink_insert_take_4x2000/single_lock", || {
        sink_bench(1)
    });

    // An 8 MiB remote-pipe transfer in 64 KiB chunks (128 frames — one
    // full default link queue), send side + receive side: frames are
    // staged like the link queue holds them, then reassembled. `copy` is
    // the pre-change path: every staged frame is a freshly copied
    // sub-buffer, memcpy'd again into the reassembly buffer. `zero_copy`
    // stages refcounted `Bytes::slice` views instead — the payload is
    // touched once.
    const XFER_BYTES: usize = 8 * 1024 * 1024;
    const XFER_CHUNK: usize = 64 * 1024;
    let payload = Bytes::from((0..XFER_BYTES).map(|i| i as u8).collect::<Vec<_>>());
    {
        let payload = payload.clone();
        h.run("data_plane", "remote_pipe_8mib/zero_copy", move || {
            let frames: Vec<(usize, Bytes)> = chunk_spans(payload.len(), XFER_CHUNK)
                .into_iter()
                .map(|(lo, hi)| (lo, payload.slice(lo..hi))) // O(1) views
                .collect();
            let mut r = Reassembler::new(payload.len());
            for (lo, frame) in frames {
                assert!(r.write_bytes(lo, frame));
            }
            assert!(r.complete());
            let out = r.into_bytes();
            assert_eq!(out.len(), payload.len());
            out
        });
    }
    {
        let payload = payload.clone();
        h.run("data_plane", "remote_pipe_8mib/copy", move || {
            let frames: Vec<(usize, Vec<u8>)> = chunk_spans(payload.len(), XFER_CHUNK)
                .into_iter()
                .map(|(lo, hi)| (lo, payload[lo..hi].to_vec())) // pre-change copies
                .collect();
            let mut r = Reassembler::new(payload.len());
            for (lo, frame) in frames {
                assert!(r.write(lo, &frame));
            }
            assert!(r.complete());
            let out = r.into_bytes();
            assert_eq!(out.len(), payload.len());
            out
        });
    }
    // Whole-payload adoption: the single-chunk fast path the receive
    // side takes when one frame covers the transfer — zero memcpy.
    h.run(
        "data_plane",
        "remote_pipe_8mib/single_chunk_adopt",
        move || {
            let mut r = Reassembler::new(payload.len());
            assert!(r.write_bytes(0, payload.clone()));
            assert!(r.complete());
            r.into_bytes()
        },
    );

    // Channel shipping: 8192 frames through the in-tree MPMC channel,
    // batched (send_many / drain_into, 32 frames per lock) vs. the
    // pre-change one-lock-per-frame send/recv.
    const FRAMES: u64 = 8192;
    const BATCH: usize = 32;
    h.run("data_plane", "channel_ship_8k/batched", || {
        let (tx, rx) = rt_channel::unbounded::<u64>();
        let mut sent = 0u64;
        let mut got = 0u64;
        let mut buf = Vec::with_capacity(BATCH);
        while sent < FRAMES {
            let hi = (sent + BATCH as u64).min(FRAMES);
            tx.send_many(sent..hi).expect("receiver alive");
            sent = hi;
            while got < sent {
                got += rx.drain_into(&mut buf, BATCH).expect("sender alive") as u64;
                buf.clear();
            }
        }
        assert_eq!(got, FRAMES);
        got
    });
    h.run("data_plane", "channel_ship_8k/single_frame", || {
        let (tx, rx) = rt_channel::unbounded::<u64>();
        let mut got = 0u64;
        for chunk in 0..(FRAMES / BATCH as u64) {
            let base = chunk * BATCH as u64;
            for v in base..base + BATCH as u64 {
                tx.send(v).expect("receiver alive");
            }
            for _ in 0..BATCH {
                rx.recv().expect("sender alive");
                got += 1;
            }
        }
        assert_eq!(got, FRAMES);
        got
    });
}

/// Execution-core micro-benchmarks: the work-stealing scheduler's
/// submit→steal→drain throughput, the SPSC link ring's push/pop cost
/// (same-thread and across a real producer/consumer pair), and pooled
/// vs. fresh allocation of direct-socket-class frame staging buffers.
fn scheduler_benchmarks(h: &Harness) {
    use std::sync::atomic::{AtomicU64, Ordering};

    h.run("scheduler", "steal_throughput_4x2000", || {
        let sched = NodeScheduler::new("bench", 4, 4);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..2000 {
            let hits = Arc::clone(&hits);
            sched.submit(Box::new(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        sched.stop();
        assert_eq!(hits.load(Ordering::Relaxed), 2000);
        hits.load(Ordering::Relaxed)
    });
    h.run("scheduler", "ring_push_pop_8k/same_thread", || {
        let (tx, rx) = rt_ring::ring::<u64>(1024);
        let mut buf = Vec::with_capacity(256);
        let mut popped = 0u64;
        for chunk in 0..32u64 {
            for i in 0..256u64 {
                tx.send(chunk * 256 + i).expect("receiver alive");
            }
            buf.clear();
            popped += rx.try_drain(&mut buf, 256).expect("connected") as u64;
        }
        assert_eq!(popped, 8192);
        popped
    });
    h.run("scheduler", "ring_push_pop_8k/cross_thread", || {
        let (tx, rx) = rt_ring::ring::<u64>(1024);
        let consumer = std::thread::spawn(move || {
            let mut got = 0u64;
            let mut buf = Vec::with_capacity(256);
            loop {
                buf.clear();
                match rx.drain_into(&mut buf, 256) {
                    Ok(n) => got += n as u64,
                    Err(_) => return got,
                }
            }
        });
        for i in 0..8192u64 {
            tx.send(i).expect("consumer alive");
        }
        drop(tx);
        let got = consumer.join().expect("consumer thread");
        assert_eq!(got, 8192);
        got
    });
    // The shipper's real staging shape: one buffer checkout gathers a
    // 16-frame batch (16 KiB) before the single socket write.
    let payload = vec![0xA5u8; 1024];
    h.run("scheduler", "frame_batch_16x1k_x64/pooled", || {
        let pool = BytePool::default();
        let mut staged = 0usize;
        for _ in 0..64 {
            let mut b = pool.get();
            for _ in 0..16 {
                b.extend_from_slice(&payload);
            }
            staged += b.len();
        }
        assert_eq!(staged, 64 * 16 * 1024);
        staged
    });
    h.run("scheduler", "frame_batch_16x1k_x64/fresh", || {
        let mut staged = 0usize;
        for _ in 0..64 {
            let mut b = Vec::new();
            for _ in 0..16 {
                b.extend_from_slice(&payload);
            }
            staged += b.len();
        }
        assert_eq!(staged, 64 * 16 * 1024);
        staged
    });
}

/// Substrate micro-benchmarks: flow network rate recomputation, the
/// Wait-Match memory, the event queue and the percentile math.
fn substrate_benchmarks(h: &Harness) {
    for n in [8usize, 64, 256] {
        h.run(
            "substrates",
            &format!("flownet/start_and_drain/{n}"),
            || {
                let mut net = FlowNet::new();
                let shared = net.add_link(1e8);
                let links: Vec<_> = (0..8).map(|_| net.add_link(5e6)).collect();
                for i in 0..n {
                    net.start_flow(
                        SimTime::ZERO,
                        &[links[i % links.len()], shared],
                        1e6,
                        i as u64,
                    );
                }
                let done = net.advance(SimTime::from_secs(10_000));
                assert_eq!(done.len(), n);
                done
            },
        );
    }

    h.run("substrates", "wait_match_insert_take_1k", || {
        let mut sink = WaitMatchMemory::new();
        for r in 0..100 {
            for e in 0..10 {
                sink.insert(
                    RequestId::from_index(r),
                    FnId::from_index(e % 4),
                    EdgeId::from_index(e),
                    1024.0,
                    SimTime::ZERO,
                );
            }
        }
        for r in 0..100 {
            for f in 0..4 {
                sink.take_inputs(RequestId::from_index(r), FnId::from_index(f));
            }
        }
        assert!(sink.is_empty());
        sink
    });

    h.run("substrates", "event_queue_10k_schedule_pop", || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_micros(i * 7919 % 65_536), i);
        }
        let mut count = 0;
        while q.pop().is_some() {
            count += 1;
        }
        assert_eq!(count, 10_000);
        count
    });

    let samples: Samples = (0..10_000).map(|i| ((i * 31) % 997) as f64).collect();
    h.run("substrates", "samples_p99_10k", || samples.p99());
}
