//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! figures all            # every figure, paper order
//! figures fig10 fig11    # a subset
//! figures --list         # available ids
//! ```

use std::process::ExitCode;

use dataflower_bench::figures::{render, ALL_FIGURES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: figures <id>... | all | --list");
        eprintln!("ids: {}", ALL_FIGURES.join(", "));
        return ExitCode::from(2);
    }
    if args.iter().any(|a| a == "--list") {
        for id in ALL_FIGURES {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_FIGURES.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match render(id) {
            Ok(text) => print!("{text}"),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
