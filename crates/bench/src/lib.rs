//! # dataflower-bench
//!
//! The benchmark harness that regenerates **every figure** of the
//! DataFlower evaluation. Each figure is a pure function returning its
//! rendered table(s); the `figures` binary dispatches on figure ids
//! (`fig2a` … `fig19`, or `all`):
//!
//! ```text
//! cargo run -p dataflower-bench --release --bin figures -- all
//! cargo run -p dataflower-bench --release --bin figures -- fig11 fig12
//! ```
//!
//! Absolute numbers differ from the paper (the substrate is a simulator,
//! not the authors' 5-node testbed); the comparisons — who wins, by what
//! factor, where curves cross — are the reproduction target. Measured
//! outputs are archived in the repository's `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
mod common;
pub mod compare;
pub mod figures;
pub mod timing;

pub use common::{header, latency_cell, memory_cell, pct, secs};
