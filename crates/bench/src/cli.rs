//! Argument parsing for the `bench` binary: four subcommands over one
//! shared option set, plus a translation shim for the original flag
//! spelling.
//!
//! * `bench run [OPTIONS] [FILTER]…` — run the wall-clock benchmarks,
//!   optionally diffing against a committed baseline;
//! * `bench compare --baseline FILE --results FILE [OPTIONS]` — diff a
//!   previously saved `--json-out` results file against a baseline
//!   without re-running anything;
//! * `bench loadgen [--config NAME] [OPTIONS]` — run an open-loop load
//!   configuration (see `dataflower_workloads::loadgen`), write its
//!   markdown report, and gate p50/p99 against a loadgen baseline;
//! * `bench fuzz [--seeds N] [OPTIONS]` — sim↔live differential
//!   fuzzing (see `dataflower_workloads::fuzz`): run N seeded random
//!   workflow DAGs on the live runtime, replay each recorded trace
//!   through the simulator, and exit non-zero on any divergence.
//!
//! The pre-subcommand spelling (`bench --runs 3 --compare B.json …`,
//! `bench flownet`) keeps working: when the first argument is not a
//! subcommand name, the whole argv is parsed as `bench run …`.

/// Options shared by every comparing subcommand: which baseline, how
/// much slack, and where the artifacts go.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompareOptions {
    /// Baseline JSONL path (`--compare` / `--baseline`).
    pub baseline: Option<String>,
    /// Regression tolerance in percent (`--tolerance`, default 100).
    pub tolerance_pct: f64,
    /// Markdown per-group summary output path (`--summary`).
    pub summary_out: Option<String>,
}

/// `bench run`: benchmark selection plus the shared comparison options.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Positional substring filters.
    pub filters: Vec<String>,
    /// `--group` exact-group filters (stored with a trailing `/`).
    pub group_filters: Vec<String>,
    /// Timed iterations per benchmark (`--runs`).
    pub runs: usize,
    /// Raw results JSONL output path (`--json-out`).
    pub json_out: Option<String>,
    /// Baseline diffing.
    pub compare: CompareOptions,
}

/// `bench compare`: diff a saved results file against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareFilesOptions {
    /// Saved `--json-out` results file (`--results`).
    pub results: String,
    /// Baseline diffing (the baseline path is required here).
    pub compare: CompareOptions,
}

/// `bench loadgen`: run a named open-loop load configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenOptions {
    /// Stock config name (`--config`, default `smoke`).
    pub config: String,
    /// Markdown report output path (`--report`, default
    /// `reports/loadgen-<config>.md`).
    pub report_out: Option<String>,
    /// Write this run's gate rows as a fresh baseline JSONL
    /// (`--write-baseline`).
    pub write_baseline: Option<String>,
    /// Baseline diffing of the p50/p99 gate rows.
    pub compare: CompareOptions,
}

/// `bench fuzz`: sim↔live differential fuzzing over seeded random
/// workflow DAGs.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzOptions {
    /// Number of consecutive seeds to run (`--seeds`, default 64).
    pub seeds: u64,
    /// First seed of the batch (`--start-seed`, default 0).
    pub start_seed: u64,
    /// One-shot reproduction (`--seed N` ≡ `--seeds 1 --start-seed N`;
    /// overrides both when given).
    pub seed: Option<u64>,
    /// Directory for failing-seed trace dumps (`--dump-dir`, default
    /// `reports/fuzz`).
    pub dump_dir: String,
    /// Per-seed live-run timeout in seconds (`--timeout`, default 30).
    pub timeout_secs: u64,
}

/// The parsed command line of the `bench` binary.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `bench run` (also the legacy no-subcommand spelling).
    Run(RunOptions),
    /// `bench compare`.
    Compare(CompareFilesOptions),
    /// `bench loadgen`.
    Loadgen(LoadgenOptions),
    /// `bench fuzz`.
    Fuzz(FuzzOptions),
    /// `bench --help` / `bench help`.
    Help,
}

/// Default timed iterations per benchmark (median-of-K).
pub const DEFAULT_RUNS: usize = 5;

/// Default regression tolerance in percent (fail above 2× slower).
pub const DEFAULT_TOLERANCE_PCT: f64 = 100.0;

/// Default number of differential-fuzz seeds per batch.
pub const DEFAULT_FUZZ_SEEDS: u64 = 64;

/// Default per-seed live-run timeout for `bench fuzz`, in seconds.
pub const DEFAULT_FUZZ_TIMEOUT_SECS: u64 = 30;

/// Default directory `bench fuzz` dumps failing-seed traces into.
pub const DEFAULT_FUZZ_DUMP_DIR: &str = "reports/fuzz";

/// The usage text `bench --help` prints.
pub const USAGE: &str = "\
usage: bench <run|compare|loadgen|fuzz> [OPTIONS]

  bench run [--runs K] [--group GROUP]... [--compare BASELINE.json]
            [--tolerance PCT] [--json-out FILE] [--summary FILE]
            [filter-substring]...
  bench compare --baseline BASELINE.json --results RESULTS.jsonl
            [--tolerance PCT] [--summary FILE]
  bench loadgen [--config smoke|soak|full] [--report FILE]
            [--compare LOADGEN_BASELINE.json] [--tolerance PCT]
            [--summary FILE] [--write-baseline FILE]
  bench fuzz [--seeds N] [--start-seed N] [--seed N]
            [--dump-dir DIR] [--timeout SECS]

`bench fuzz` runs N seeded random workflow DAGs live, replays each
recorded trace through the simulator, and exits non-zero on any
divergence; a failing seed's trace lands in DIR and replays with
`bench fuzz --seed N`.

The legacy spelling without a subcommand still works and means `run`:
  bench --runs 3 --compare BENCH_BASELINE.json --tolerance 100";

fn take_value(args: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    args.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_tolerance(raw: &str) -> Result<f64, String> {
    raw.parse::<f64>()
        .ok()
        .filter(|p| p.is_finite() && *p >= 0.0)
        .ok_or_else(|| "--tolerance needs a non-negative percentage".to_string())
}

fn parse_run(args: &[String]) -> Result<RunOptions, String> {
    let mut opts = RunOptions {
        filters: Vec::new(),
        group_filters: Vec::new(),
        runs: DEFAULT_RUNS,
        json_out: None,
        compare: CompareOptions {
            baseline: None,
            tolerance_pct: DEFAULT_TOLERANCE_PCT,
            summary_out: None,
        },
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--group" => {
                // Exact-group filter: matched as an `id.starts_with`
                // prefix, so `--group cluster` cannot leak into
                // `live_cluster/*` or slash-bearing benchmark names.
                let group = take_value(&mut it, "--group")?;
                opts.group_filters.push(format!("{group}/"));
            }
            "--runs" => {
                opts.runs = take_value(&mut it, "--runs")?
                    .parse()
                    .ok()
                    .filter(|k| *k > 0)
                    .ok_or("--runs needs a positive integer")?;
            }
            "--compare" | "--baseline" => {
                opts.compare.baseline = Some(take_value(&mut it, a)?);
            }
            "--json-out" => opts.json_out = Some(take_value(&mut it, "--json-out")?),
            "--summary" => opts.compare.summary_out = Some(take_value(&mut it, "--summary")?),
            "--tolerance" => {
                opts.compare.tolerance_pct = parse_tolerance(&take_value(&mut it, "--tolerance")?)?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            other => opts.filters.push(other.to_owned()),
        }
    }
    Ok(opts)
}

fn parse_compare(args: &[String]) -> Result<CompareFilesOptions, String> {
    let mut baseline = None;
    let mut results = None;
    let mut tolerance_pct = DEFAULT_TOLERANCE_PCT;
    let mut summary_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" | "--compare" => baseline = Some(take_value(&mut it, a)?),
            "--results" => results = Some(take_value(&mut it, "--results")?),
            "--summary" => summary_out = Some(take_value(&mut it, "--summary")?),
            "--tolerance" => {
                tolerance_pct = parse_tolerance(&take_value(&mut it, "--tolerance")?)?;
            }
            other => return Err(format!("unknown `bench compare` argument `{other}`")),
        }
    }
    Ok(CompareFilesOptions {
        results: results.ok_or("bench compare needs --results RESULTS.jsonl")?,
        compare: CompareOptions {
            baseline: Some(baseline.ok_or("bench compare needs --baseline BASELINE.json")?),
            tolerance_pct,
            summary_out,
        },
    })
}

fn parse_loadgen(args: &[String]) -> Result<LoadgenOptions, String> {
    let mut opts = LoadgenOptions {
        config: "smoke".to_string(),
        report_out: None,
        write_baseline: None,
        compare: CompareOptions {
            baseline: None,
            tolerance_pct: DEFAULT_TOLERANCE_PCT,
            summary_out: None,
        },
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--config" => opts.config = take_value(&mut it, "--config")?,
            "--report" => opts.report_out = Some(take_value(&mut it, "--report")?),
            "--write-baseline" => {
                opts.write_baseline = Some(take_value(&mut it, "--write-baseline")?);
            }
            "--compare" | "--baseline" => opts.compare.baseline = Some(take_value(&mut it, a)?),
            "--summary" => opts.compare.summary_out = Some(take_value(&mut it, "--summary")?),
            "--tolerance" => {
                opts.compare.tolerance_pct = parse_tolerance(&take_value(&mut it, "--tolerance")?)?;
            }
            other => return Err(format!("unknown `bench loadgen` argument `{other}`")),
        }
    }
    Ok(opts)
}

fn parse_fuzz(args: &[String]) -> Result<FuzzOptions, String> {
    let mut opts = FuzzOptions {
        seeds: DEFAULT_FUZZ_SEEDS,
        start_seed: 0,
        seed: None,
        dump_dir: DEFAULT_FUZZ_DUMP_DIR.to_string(),
        timeout_secs: DEFAULT_FUZZ_TIMEOUT_SECS,
    };
    let parse_u64 = |raw: String, flag: &str| {
        raw.parse::<u64>()
            .map_err(|_| format!("{flag} needs a non-negative integer"))
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                opts.seeds = parse_u64(take_value(&mut it, "--seeds")?, "--seeds")?;
                if opts.seeds == 0 {
                    return Err("--seeds needs a positive integer".to_string());
                }
            }
            "--start-seed" => {
                opts.start_seed = parse_u64(take_value(&mut it, "--start-seed")?, "--start-seed")?;
            }
            "--seed" => {
                opts.seed = Some(parse_u64(take_value(&mut it, "--seed")?, "--seed")?);
            }
            "--dump-dir" => opts.dump_dir = take_value(&mut it, "--dump-dir")?,
            "--timeout" => {
                opts.timeout_secs = parse_u64(take_value(&mut it, "--timeout")?, "--timeout")?;
                if opts.timeout_secs == 0 {
                    return Err("--timeout needs a positive number of seconds".to_string());
                }
            }
            other => return Err(format!("unknown `bench fuzz` argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Parses the binary's arguments (without the program name). The first
/// argument selects the subcommand; anything else — the legacy spelling
/// — is translated to `run` wholesale.
///
/// # Errors
///
/// Returns a usage message naming the offending flag or missing value.
///
/// # Examples
///
/// ```
/// use dataflower_bench::cli::{parse, Command};
///
/// // New spelling and the legacy shim parse identically.
/// let legacy: Vec<String> = ["--runs", "3", "--compare", "B.json"]
///     .iter().map(|s| s.to_string()).collect();
/// let new: Vec<String> = ["run", "--runs", "3", "--compare", "B.json"]
///     .iter().map(|s| s.to_string()).collect();
/// assert_eq!(parse(&legacy).unwrap(), parse(&new).unwrap());
/// assert!(matches!(parse(&legacy).unwrap(), Command::Run(_)));
/// ```
pub fn parse(args: &[String]) -> Result<Command, String> {
    match args.first().map(String::as_str) {
        None => Ok(Command::Run(parse_run(&[])?)),
        Some("--help") | Some("-h") | Some("help") => Ok(Command::Help),
        Some("run") => Ok(Command::Run(parse_run(&args[1..])?)),
        Some("compare") => Ok(Command::Compare(parse_compare(&args[1..])?)),
        Some("loadgen") => Ok(Command::Loadgen(parse_loadgen(&args[1..])?)),
        Some("fuzz") => Ok(Command::Fuzz(parse_fuzz(&args[1..])?)),
        // Legacy shim: the original binary had no subcommands — flags
        // and filter substrings started immediately. Keep every old
        // invocation (ci.sh, the CI workflow, muscle memory) working by
        // treating the whole argv as `run` arguments.
        Some(_) => Ok(Command::Run(parse_run(args)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn legacy_ci_invocation_translates_to_run() {
        // The exact argv ci.sh used before subcommands existed.
        let cmd = parse(&argv(&[
            "--runs",
            "3",
            "--compare",
            "BENCH_BASELINE.json",
            "--tolerance",
            "100",
            "--json-out",
            "bench-results.jsonl",
            "--summary",
            "bench-summary.md",
        ]))
        .unwrap();
        let Command::Run(opts) = cmd else {
            panic!("legacy argv must mean `run`");
        };
        assert_eq!(opts.runs, 3);
        assert_eq!(
            opts.compare.baseline.as_deref(),
            Some("BENCH_BASELINE.json")
        );
        assert_eq!(opts.compare.tolerance_pct, 100.0);
        assert_eq!(opts.json_out.as_deref(), Some("bench-results.jsonl"));
        assert_eq!(
            opts.compare.summary_out.as_deref(),
            Some("bench-summary.md")
        );
    }

    #[test]
    fn legacy_filter_and_group_still_work() {
        let Command::Run(opts) = parse(&argv(&["flownet", "--group", "engines"])).unwrap() else {
            panic!("filter argv must mean `run`");
        };
        assert_eq!(opts.filters, vec!["flownet".to_string()]);
        assert_eq!(opts.group_filters, vec!["engines/".to_string()]);
        assert_eq!(opts.runs, DEFAULT_RUNS);
    }

    #[test]
    fn empty_argv_runs_everything() {
        let Command::Run(opts) = parse(&[]).unwrap() else {
            panic!("no argv must mean `run`");
        };
        assert!(opts.filters.is_empty() && opts.group_filters.is_empty());
        assert!(opts.compare.baseline.is_none());
    }

    #[test]
    fn compare_subcommand_requires_both_files() {
        assert!(parse(&argv(&["compare", "--baseline", "b.json"])).is_err());
        assert!(parse(&argv(&["compare", "--results", "r.jsonl"])).is_err());
        let Command::Compare(opts) = parse(&argv(&[
            "compare",
            "--baseline",
            "b.json",
            "--results",
            "r.jsonl",
            "--tolerance",
            "50",
        ]))
        .unwrap() else {
            panic!("compare argv must mean `compare`");
        };
        assert_eq!(opts.results, "r.jsonl");
        assert_eq!(opts.compare.baseline.as_deref(), Some("b.json"));
        assert_eq!(opts.compare.tolerance_pct, 50.0);
    }

    #[test]
    fn loadgen_defaults_and_flags() {
        let Command::Loadgen(opts) = parse(&argv(&["loadgen"])).unwrap() else {
            panic!("loadgen argv must mean `loadgen`");
        };
        assert_eq!(opts.config, "smoke");
        assert!(opts.report_out.is_none() && opts.compare.baseline.is_none());

        let Command::Loadgen(opts) = parse(&argv(&[
            "loadgen",
            "--config",
            "full",
            "--report",
            "reports/loadgen-full.md",
            "--compare",
            "LOADGEN_BASELINE.json",
            "--write-baseline",
            "LOADGEN_BASELINE.json",
        ]))
        .unwrap() else {
            panic!("loadgen argv must mean `loadgen`");
        };
        assert_eq!(opts.config, "full");
        assert_eq!(opts.report_out.as_deref(), Some("reports/loadgen-full.md"));
        assert_eq!(
            opts.compare.baseline.as_deref(),
            Some("LOADGEN_BASELINE.json")
        );
        assert_eq!(
            opts.write_baseline.as_deref(),
            Some("LOADGEN_BASELINE.json")
        );
    }

    #[test]
    fn fuzz_defaults_and_flags() {
        let Command::Fuzz(opts) = parse(&argv(&["fuzz"])).unwrap() else {
            panic!("fuzz argv must mean `fuzz`");
        };
        assert_eq!(opts.seeds, DEFAULT_FUZZ_SEEDS);
        assert_eq!(opts.start_seed, 0);
        assert!(opts.seed.is_none());
        assert_eq!(opts.dump_dir, DEFAULT_FUZZ_DUMP_DIR);
        assert_eq!(opts.timeout_secs, DEFAULT_FUZZ_TIMEOUT_SECS);

        let Command::Fuzz(opts) = parse(&argv(&[
            "fuzz",
            "--seeds",
            "128",
            "--start-seed",
            "1000",
            "--dump-dir",
            "target/fuzz",
            "--timeout",
            "60",
        ]))
        .unwrap() else {
            panic!("fuzz argv must mean `fuzz`");
        };
        assert_eq!(opts.seeds, 128);
        assert_eq!(opts.start_seed, 1000);
        assert_eq!(opts.dump_dir, "target/fuzz");
        assert_eq!(opts.timeout_secs, 60);

        // One-shot reproduction of a failing seed.
        let Command::Fuzz(opts) = parse(&argv(&["fuzz", "--seed", "42"])).unwrap() else {
            panic!("fuzz argv must mean `fuzz`");
        };
        assert_eq!(opts.seed, Some(42));
    }

    #[test]
    fn bad_values_are_rejected_with_messages() {
        assert!(parse(&argv(&["run", "--runs", "0"])).is_err());
        assert!(parse(&argv(&["run", "--tolerance", "-5"])).is_err());
        assert!(parse(&argv(&["run", "--unknown-flag"])).is_err());
        assert!(parse(&argv(&["loadgen", "--config"])).is_err());
        assert!(parse(&argv(&["fuzz", "--seeds", "0"])).is_err());
        assert!(parse(&argv(&["fuzz", "--seeds", "abc"])).is_err());
        assert!(parse(&argv(&["fuzz", "--timeout", "0"])).is_err());
        assert!(parse(&argv(&["fuzz", "--frob"])).is_err());
    }
}
