//! Shared helpers for the figure generators.

use dataflower_cluster::{RunReport, WorkflowStats};
use dataflower_metrics::fmt_f;

/// Renders a figure header.
pub fn header(id: &str, caption: &str) -> String {
    format!("\n=== {id}: {caption} ===\n")
}

/// Formats seconds with millisecond precision.
pub fn secs(v: f64) -> String {
    fmt_f(v, 3)
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// `mean/p99` summary of a workflow's latency, with a failure marker when
/// a meaningful fraction of requests never finished (the paper's missing
/// data points).
pub fn latency_cell(stats: &WorkflowStats) -> String {
    if stats.completed == 0 {
        return "FAIL".to_owned();
    }
    let cell = format!(
        "{}/{}",
        secs(stats.latency.mean()),
        secs(stats.latency.p99())
    );
    if stats.completion_rate() < 0.8 {
        format!("{cell} (timeouts)")
    } else {
        cell
    }
}

/// Memory cost of a run, GB·s.
pub fn memory_cell(report: &RunReport) -> String {
    fmt_f(report.memory_gb_s, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflower_metrics::Samples;

    #[test]
    fn latency_cell_marks_failures() {
        let empty = WorkflowStats::default();
        assert_eq!(latency_cell(&empty), "FAIL");

        let mut ok = WorkflowStats {
            completed: 10,
            ..WorkflowStats::default()
        };
        ok.latency = [1.0; 10].into_iter().collect::<Samples>();
        assert!(latency_cell(&ok).starts_with("1.000/"));

        let mostly_dead = WorkflowStats {
            completed: 1,
            unfinished: 9,
            latency: [1.0].into_iter().collect(),
            ..WorkflowStats::default()
        };
        assert!(latency_cell(&mostly_dead).contains("timeouts"));
    }

    #[test]
    fn formatting() {
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(pct(0.354), "35.4%");
    }
}
