#!/usr/bin/env bash
# Tier-1 verification for the DataFlower reproduction workspace.
#
# Runs entirely offline (the workspace has zero external dependencies):
#   1. cargo build --release
#   2. cargo test -q --workspace
#   3. cargo fmt --check        (skipped if rustfmt is absent)
#   4. cargo clippy -D warnings (skipped if clippy is absent)
#   5. cargo doc -D warnings    (skipped if rustdoc is absent)
#   6. scripts/linkcheck.sh     (markdown links/anchors must resolve)
#   7. examples smoke pass      (every examples/*.rs runs to completion)
#   8. bench regression gate    (prints per-benchmark deltas against
#      BENCH_BASELINE.json; fails only when a benchmark got more than
#      2x slower than the committed baseline)
#   9. loadgen smoke gate       (open-loop load harness, smoke config;
#      p50/p99 compared against LOADGEN_BASELINE.json)
#  10. diff-fuzz smoke gate     (seeded random workflow DAGs run through
#      the live cluster with trace recording on, then replayed in the
#      simulator; the two decision streams must match exactly)
#
# Steps 3-4 are the exact commands of the CI `lint` job and step 7 is the
# exact command of the CI `bench-smoke` job, so local and CI gates match.
# CI's verify job sets SKIP_LINT=1 / SKIP_BENCH_GATE=1 because those
# dedicated jobs own the steps there; local runs get everything.
set -u

cd "$(dirname "$0")"

failures=0

run() {
    echo "==> $*"
    if "$@"; then
        echo "    ok"
    else
        echo "    FAILED: $*" >&2
        failures=$((failures + 1))
    fi
}

run cargo build --workspace --release

run cargo test -q --workspace

if [ "${SKIP_LINT:-0}" = 1 ]; then
    echo "==> SKIP_LINT=1; fmt and clippy run in the dedicated lint job"
else
    if cargo fmt --version >/dev/null 2>&1; then
        run cargo fmt --check
    else
        echo "==> cargo fmt unavailable; skipping format check"
    fi

    if cargo clippy --version >/dev/null 2>&1; then
        run cargo clippy --workspace --all-targets -- -D warnings
    else
        echo "==> cargo clippy unavailable; skipping lint check"
    fi
fi

if rustdoc --version >/dev/null 2>&1; then
    run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
else
    echo "==> rustdoc unavailable; skipping doc check"
fi

# Markdown link check: relative paths and anchors across the top-level
# docs must resolve (the CI `docs` job runs the same script).
run ./scripts/linkcheck.sh

# Examples smoke pass: doc-level entry points must keep running.
for ex in examples/*.rs; do
    run cargo run --quiet --release --example "$(basename "${ex%.rs}")"
done

# Bench regression gate: non-fatal on drift — the per-benchmark deltas
# are printed either way — but a benchmark more than 2x slower than the
# committed baseline fails the build. CI's verify job sets
# SKIP_BENCH_GATE=1 because the dedicated bench-smoke job owns this step
# there; local runs get it by default.
if [ "${SKIP_BENCH_GATE:-0}" != 1 ]; then
    run cargo run --release -p dataflower-bench --bin bench -- \
        --runs 3 --compare BENCH_BASELINE.json --tolerance 100

    # Loadgen smoke gate: the open-loop load harness drives its smallest
    # config against the live cluster and compares p50/p99 per
    # cell/benchmark row against the committed baseline. Same 2x
    # tolerance; regressions on *either* quantile fail.
    run cargo run --release -p dataflower-bench --bin bench -- \
        loadgen --config smoke --compare LOADGEN_BASELINE.json --tolerance 100
else
    echo "==> SKIP_BENCH_GATE=1; bench regression gate runs in the bench-smoke job"
fi

# Differential fuzz smoke: a small batch of seeded random workflow DAGs
# runs through the live cluster with trace recording on; each recorded
# trace is then replayed in the simulator and the two decision streams
# (invocations, pipe choices, checkpoint marks) must match exactly —
# zero divergences, byte-identical outputs. A failing seed dumps its
# trace to reports/fuzz/seed-N.dftrace and prints the one-command repro
# (`bench fuzz --seed N`). CI's verify job sets SKIP_FUZZ_GATE=1 because
# the dedicated diff-fuzz job owns this step there.
if [ "${SKIP_FUZZ_GATE:-0}" != 1 ]; then
    run cargo run --release -p dataflower-bench --bin bench -- \
        fuzz --seeds 16
else
    echo "==> SKIP_FUZZ_GATE=1; diff-fuzz gate runs in the diff-fuzz job"
fi

if [ "$failures" -ne 0 ]; then
    echo "ci.sh: $failures check(s) failed" >&2
    exit 1
fi
echo "ci.sh: all checks passed"
