#!/usr/bin/env bash
# Tier-1 verification for the DataFlower reproduction workspace.
#
# Runs entirely offline (the workspace has zero external dependencies):
#   1. cargo build --release
#   2. cargo test -q --workspace
#   3. cargo fmt --check        (skipped if rustfmt is absent)
#   4. cargo clippy -D warnings (skipped if clippy is absent)
set -u

cd "$(dirname "$0")"

failures=0

run() {
    echo "==> $*"
    if "$@"; then
        echo "    ok"
    else
        echo "    FAILED: $*" >&2
        failures=$((failures + 1))
    fi
}

run cargo build --workspace --release

run cargo test -q --workspace

if cargo fmt --version >/dev/null 2>&1; then
    run cargo fmt --check
else
    echo "==> cargo fmt unavailable; skipping format check"
fi

if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy unavailable; skipping lint check"
fi

if [ "$failures" -ne 0 ]; then
    echo "ci.sh: $failures check(s) failed" >&2
    exit 1
fi
echo "ci.sh: all checks passed"
