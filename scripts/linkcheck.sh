#!/usr/bin/env bash
# Markdown link checker for the repo's top-level docs.
#
# Verifies, for every inline markdown link in the checked files:
#   * relative file targets exist (resolved against the linking file's
#     directory);
#   * anchor targets (`#heading` or `file.md#heading`) resolve to a real
#     heading of the target file, using GitHub's slug rules (lowercase,
#     punctuation stripped, spaces to hyphens).
#
# External links (http/https/mailto) are skipped — the check must stay
# offline. Exit code is non-zero when any link is broken.
#
#   ./scripts/linkcheck.sh                 # default file set
#   ./scripts/linkcheck.sh FILE.md ...     # explicit file set
set -u

cd "$(dirname "$0")/.."

files=("$@")
if [ "${#files[@]}" -eq 0 ]; then
    files=(README.md ARCHITECTURE.md CHANGES.md)
    # Committed load-harness run reports ride along in the sweep.
    for report in reports/*.md; do
        [ -e "$report" ] && files+=("$report")
    done
fi

failures=0
checked=0

# GitHub-style anchor slug of one heading line (input: heading text
# without the leading #'s).
slug() {
    printf '%s' "$1" \
        | tr '[:upper:]' '[:lower:]' \
        | sed -e 's/[^a-z0-9 -]//g' -e 's/ /-/g'
}

# All heading slugs of a markdown file, one per line. ATX headings only
# (that is all these docs use); fenced code blocks are excluded so a
# `# comment` inside ```bash``` is not mistaken for a heading.
heading_slugs() {
    awk '
        /^```/ { fence = !fence; next }
        !fence && /^##* / { sub(/^#+ /, ""); print }
    ' "$1" | while IFS= read -r h; do
        slug "$h"
        printf '\n'
    done
}

for file in "${files[@]}"; do
    if [ ! -f "$file" ]; then
        echo "linkcheck: checked file \`$file\` does not exist" >&2
        failures=$((failures + 1))
        continue
    fi
    dir=$(dirname "$file")
    # Inline links: every `](target)` occurrence outside code fences.
    targets=$(awk '/^```/ { fence = !fence } !fence' "$file" \
        | grep -o ']([^)]*)' | sed -e 's/^](//' -e 's/)$//')
    while IFS= read -r target; do
        [ -z "$target" ] && continue
        case "$target" in
            http://*|https://*|mailto:*) continue ;;
        esac
        checked=$((checked + 1))
        path="${target%%#*}"
        anchor=""
        case "$target" in
            *'#'*) anchor="${target#*#}" ;;
        esac
        if [ -n "$path" ]; then
            resolved="$dir/$path"
            if [ ! -e "$resolved" ]; then
                echo "linkcheck: $file: broken path \`$target\` ($resolved missing)" >&2
                failures=$((failures + 1))
                continue
            fi
        else
            resolved="$file"
        fi
        if [ -n "$anchor" ]; then
            case "$resolved" in
                *.md)
                    if ! heading_slugs "$resolved" | grep -qx "$anchor"; then
                        echo "linkcheck: $file: anchor \`#$anchor\` not found in $resolved" >&2
                        failures=$((failures + 1))
                    fi
                    ;;
                *)
                    echo "linkcheck: $file: anchor on non-markdown target \`$target\`" >&2
                    failures=$((failures + 1))
                    ;;
            esac
        fi
    done <<EOF
$targets
EOF
done

if [ "$failures" -ne 0 ]; then
    echo "linkcheck: $failures broken link(s) across ${#files[@]} file(s)" >&2
    exit 1
fi
echo "linkcheck: $checked link(s) across ${#files[@]} file(s) all resolve"
